//! Distributed Matrix Powers Kernel over a depth-s ghost zone.
//!
//! The serial [`crate::Mpk`] builds the basis matrices with one SpMV per
//! column. Distributed naively, that is one neighbour exchange per column —
//! s exchanges per s-step block. [`DistMpk`] instead runs the whole
//! recurrence from a **single** exchange: the caller gathers the seed
//! vector on the depth-s extended index set of a [`GhostZone`] (the "PA1"
//! scheme), and level `j` of the recurrence is computed redundantly on the
//! shrinking reach prefix `reach(s − j − 1)`, so the final level lands
//! exactly on the owned rows with no further communication.
//!
//! This only works when the preconditioner is *pointwise* (`M⁻¹ = diag(w)`,
//! i.e. Jacobi or identity): applying it on ghost rows needs nothing but
//! the ghosted weight vector. Coupled preconditioners force the engine to a
//! replicated fallback instead (see `spcg-solvers`).
//!
//! Counters are charged **identically** to the serial kernel (global SpMV
//! FLOPs, global preconditioner FLOPs, global basis-correction BLAS1), so a
//! ranked run's counter set differs from the serial one only in the halo
//! fields the engine adds. The redundant ghost-row arithmetic is the price
//! of the avoided latency and is deliberately not double-counted.

use crate::poly::BasisParams;
use spcg_dist::Counters;
use spcg_obs::{Phase, Track};
use spcg_sparse::{CsrMatrix, GhostZone, MultiVector, ParKernels, SparseFormat};

/// Exchange-completion callback for [`DistMpk::run_overlapped`]: fills the
/// ghost segment of the seed (and of `M⁻¹·seed` when present) once the
/// interior rows are done.
pub type CompleteGhosts<'a> = dyn FnMut(&mut [f64], Option<&mut [f64]>) + 'a;

/// Matrix powers kernel over one rank's depth-s ghost zone.
pub struct DistMpk {
    gz: GhostZone,
    /// Pointwise preconditioner weights on the extended index set.
    weights_ext: Vec<f64>,
    /// Global-size counter charges, mirroring the serial kernel.
    spmv_flops: u64,
    m_flops: u64,
    n_global: u64,
    /// Intra-rank thread pool for the prefix SpMVs and elementwise passes.
    pk: ParKernels,
    /// Scratch: extended columns of V and M⁻¹V.
    v_ext: Vec<Vec<f64>>,
    mv_ext: Vec<Vec<f64>>,
    track: Option<Track>,
    format: SparseFormat,
}

impl DistMpk {
    /// Builds the kernel for rows `[lo, hi)` of `a` at ghost depth `depth`,
    /// with the global pointwise weight vector `weights` (`M⁻¹ = diag(w)`)
    /// charged at `m_flops` FLOPs per (global) application. Serial
    /// execution; see [`DistMpk::new_par`] for the threaded variant.
    ///
    /// # Panics
    /// Panics on dimension mismatches or `depth == 0`.
    pub fn new(
        a: &CsrMatrix,
        lo: usize,
        hi: usize,
        depth: usize,
        weights: &[f64],
        m_flops: u64,
    ) -> Self {
        Self::new_par(a, lo, hi, depth, weights, m_flops, ParKernels::serial())
    }

    /// [`DistMpk::new`] with an intra-rank thread pool: the per-level
    /// prefix SpMVs and elementwise recurrence passes are row-partitioned
    /// over `pk`, bitwise identical to the serial kernel for every thread
    /// count.
    ///
    /// # Panics
    /// Panics on dimension mismatches or `depth == 0`.
    pub fn new_par(
        a: &CsrMatrix,
        lo: usize,
        hi: usize,
        depth: usize,
        weights: &[f64],
        m_flops: u64,
        pk: ParKernels,
    ) -> Self {
        assert_eq!(weights.len(), a.nrows(), "DistMpk: weight length mismatch");
        let gz = GhostZone::new(a, lo, hi, depth);
        let weights_ext = gz.extend_from_global(weights);
        DistMpk {
            weights_ext,
            spmv_flops: a.spmv_flops(),
            m_flops,
            n_global: a.nrows() as u64,
            pk,
            v_ext: Vec::new(),
            mv_ext: Vec::new(),
            track: None,
            format: SparseFormat::Csr,
            gz,
        }
    }

    /// Selects the sparse format for the per-level prefix SpMVs. Under
    /// [`SparseFormat::Sell`] the ghost zone's cached SELL-C-σ interior and
    /// frontier operators are used; results are bitwise identical across
    /// formats (the sliced kernels accumulate in per-row CSR entry order).
    pub fn with_format(mut self, format: SparseFormat) -> Self {
        self.format = format;
        self
    }

    /// Attaches a trace track: each recurrence level records an
    /// [`MpkLevel`](Phase) span, with the interior SpMV, frontier rows,
    /// and pointwise preconditioner applies nested as
    /// [`Spmv`](Phase)/[`Frontier`](Phase)/[`Precond`](Phase) spans.
    /// Instrumentation only — results and counters are unchanged.
    pub fn with_track(mut self, track: Option<Track>) -> Self {
        self.track = track;
        self
    }

    /// The underlying ghost-zone plan (the engine uses it to gather ghosts).
    pub fn ghost(&self) -> &GhostZone {
        &self.gz
    }

    /// Fills the **local** basis blocks `v` (`nl × v_cols`) and `mv`
    /// (`nl × mv_cols`) from the seed gathered on the extended index set.
    ///
    /// * `w_ext` (and `known_mw_ext` if present) must hold the seed on all
    ///   `ext_len()` extended indices — owned rows first, then ghosts.
    /// * Supports `v_cols − 1 ≤ depth` levels; column counts follow the
    ///   serial kernel's contract (`v_cols − 1 ≤ mv_cols ≤ v_cols`).
    ///
    /// Owned-row results are bitwise identical to [`crate::Mpk::run`]: the
    /// remapped operator preserves per-row entry order and the elementwise
    /// recurrence passes are the same code shape.
    ///
    /// # Panics
    /// Panics on dimension or parameter-degree mismatches.
    pub fn run(
        &mut self,
        w_ext: &[f64],
        known_mw_ext: Option<&[f64]>,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
    ) {
        let nl = self.gz.n_owned();
        let ext_len = self.gz.ext_len();
        let v_cols = v.k();
        let mv_cols = mv.k();
        let s_levels = v_cols - 1;
        assert!(v_cols >= 1, "DistMpk::run: need at least one V column");
        assert!(
            mv_cols + 1 >= v_cols && mv_cols <= v_cols,
            "DistMpk::run: need v_cols-1 <= mv_cols <= v_cols (got {v_cols}, {mv_cols})"
        );
        assert!(
            s_levels <= self.gz.depth(),
            "DistMpk::run: {s_levels} levels exceed ghost depth {}",
            self.gz.depth()
        );
        assert_eq!(v.n(), nl, "DistMpk::run: v row mismatch");
        assert_eq!(mv.n(), nl, "DistMpk::run: mv row mismatch");
        assert_eq!(w_ext.len(), ext_len, "DistMpk::run: seed length mismatch");
        assert!(
            params.degree() + 1 >= v_cols,
            "DistMpk::run: basis degree {} too small for {v_cols} columns",
            params.degree()
        );

        self.v_ext.resize(v_cols, Vec::new());
        self.mv_ext.resize(mv_cols.max(1), Vec::new());
        for c in self.v_ext.iter_mut().chain(self.mv_ext.iter_mut()) {
            c.resize(ext_len, 0.0);
        }

        self.v_ext[0].copy_from_slice(w_ext);
        if mv_cols > 0 {
            match known_mw_ext {
                Some(mw) => {
                    assert_eq!(mw.len(), ext_len, "DistMpk::run: known_mw length mismatch");
                    self.mv_ext[0].copy_from_slice(mw);
                }
                None => {
                    let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
                    self.pk
                        .pointwise_mul(&self.weights_ext, w_ext, &mut self.mv_ext[0]);
                    counters.record_precond(self.m_flops);
                }
            }
        }

        for j in 0..s_levels {
            let _level = spcg_obs::span(self.track.as_ref(), Phase::MpkLevel);
            // Level j+1 is needed (and computable) on reach(s_levels−j−1);
            // its operands are valid on the strictly larger reach set.
            let rows = self.gz.reach_len(s_levels - j - 1);
            let (lower, upper) = self.v_ext.split_at_mut(j + 1);
            // t is the storage of the new column v_{j+1}, built in place.
            let t = &mut upper[0];
            {
                let _s = spcg_obs::span(self.track.as_ref(), Phase::Spmv);
                match self.format {
                    SparseFormat::Csr => {
                        self.gz.spmv_prefix_par(&self.pk, rows, &self.mv_ext[j], t)
                    }
                    SparseFormat::Sell => {
                        self.gz.spmv_prefix_sell(&self.pk, rows, &self.mv_ext[j], t)
                    }
                }
            }
            counters.record_spmv(self.spmv_flops);
            // As in the serial kernel, `t += (−θ)·v` is bitwise equal to
            // the historical `t −= θ·v` pass.
            let theta = params.theta[j];
            let inv_gamma = 1.0 / params.gamma[j];
            if theta != 0.0 {
                self.pk.axpy(-theta, &lower[j][..rows], &mut t[..rows]);
            }
            if j >= 1 && params.mu[j - 1] != 0.0 {
                self.pk
                    .axpy(-params.mu[j - 1], &lower[j - 1][..rows], &mut t[..rows]);
            }
            if inv_gamma != 1.0 {
                self.pk.scale(inv_gamma, &mut t[..rows]);
            }
            counters.blas1_flops += params.extra_flops_for_column(j + 1, self.n_global);
            if j + 1 < mv_cols {
                let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
                self.pk.pointwise_mul(
                    &self.weights_ext[..rows],
                    &self.v_ext[j + 1][..rows],
                    &mut self.mv_ext[j + 1][..rows],
                );
                counters.record_precond(self.m_flops);
            }
        }

        for j in 0..v_cols {
            v.col_mut(j).copy_from_slice(&self.v_ext[j][..nl]);
        }
        for j in 0..mv_cols {
            mv.col_mut(j).copy_from_slice(&self.mv_ext[j][..nl]);
        }
    }

    /// [`DistMpk::run`] with communication–computation overlap: the caller
    /// posts its owned chunk(s) to the exchange *before* this call and
    /// passes `complete`, which must finish the exchange by filling the
    /// ghost segments (`ext_len − n_owned` entries past the owned prefix)
    /// of the seed — and of `M⁻¹·seed` when `known_mw` is given. The
    /// kernel seeds the owned prefixes from the local slices, runs the
    /// **interior** rows of the first basis product on owned data alone,
    /// then invokes `complete` exactly once and finishes the frontier rows
    /// and the remaining levels with the same split schedule.
    ///
    /// Interior and frontier row lists partition every level's row prefix
    /// and reuse the per-row accumulation of the prefix SpMV, and the
    /// basis corrections are untouched — the outputs and every counter
    /// charge are **bitwise identical** to [`DistMpk::run`] on the fully
    /// gathered seed, for any thread count.
    ///
    /// # Panics
    /// Panics on dimension or parameter-degree mismatches (the contract of
    /// [`DistMpk::run`], with `w`/`known_mw` of owned length `n_owned()`).
    #[allow(clippy::too_many_arguments)] // mirrors `run` plus the completion hook
    pub fn run_overlapped(
        &mut self,
        w: &[f64],
        known_mw: Option<&[f64]>,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
        complete: &mut CompleteGhosts<'_>,
    ) {
        let nl = self.gz.n_owned();
        let ext_len = self.gz.ext_len();
        let v_cols = v.k();
        let mv_cols = mv.k();
        let s_levels = v_cols - 1;
        assert!(v_cols >= 1, "DistMpk::run: need at least one V column");
        assert!(
            mv_cols + 1 >= v_cols && mv_cols <= v_cols,
            "DistMpk::run: need v_cols-1 <= mv_cols <= v_cols (got {v_cols}, {mv_cols})"
        );
        assert!(
            s_levels <= self.gz.depth(),
            "DistMpk::run: {s_levels} levels exceed ghost depth {}",
            self.gz.depth()
        );
        assert_eq!(v.n(), nl, "DistMpk::run: v row mismatch");
        assert_eq!(mv.n(), nl, "DistMpk::run: mv row mismatch");
        assert_eq!(w.len(), nl, "DistMpk::run: seed length mismatch");
        assert!(
            params.degree() + 1 >= v_cols,
            "DistMpk::run: basis degree {} too small for {v_cols} columns",
            params.degree()
        );

        self.v_ext.resize(v_cols, Vec::new());
        self.mv_ext.resize(mv_cols.max(1), Vec::new());
        for c in self.v_ext.iter_mut().chain(self.mv_ext.iter_mut()) {
            c.resize(ext_len, 0.0);
        }

        // Owned prefixes of the seed columns; ghost segments arrive at the
        // completion below. Splitting the elementwise M⁻¹ application at
        // `nl` changes no per-element product, so it stays bitwise equal to
        // the full-length pass of the blocking kernel.
        self.v_ext[0][..nl].copy_from_slice(w);
        if mv_cols > 0 {
            match known_mw {
                Some(mw) => {
                    assert_eq!(mw.len(), nl, "DistMpk::run: known_mw length mismatch");
                    self.mv_ext[0][..nl].copy_from_slice(mw);
                }
                None => {
                    let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
                    let (head, _) = self.mv_ext[0].split_at_mut(nl);
                    self.pk.pointwise_mul(&self.weights_ext[..nl], w, head);
                }
            }
        }

        // Interior rows of the first basis product: every operand column
        // is owned, so this runs entirely inside the exchange's overlap
        // window. (With zero levels there is no product to overlap; the
        // completion below still runs exactly once.)
        if s_levels > 0 {
            let _s = spcg_obs::span(self.track.as_ref(), Phase::Spmv);
            let (_, upper) = self.v_ext.split_at_mut(1);
            match self.format {
                SparseFormat::Csr => self.gz.spmv_rows_list_par(
                    &self.pk,
                    self.gz.interior_rows(),
                    &self.mv_ext[0],
                    &mut upper[0],
                ),
                SparseFormat::Sell => {
                    self.gz
                        .spmv_interior_sell(&self.pk, &self.mv_ext[0], &mut upper[0])
                }
            }
        }

        // Receive completion: the caller copies the exchanged ghost words
        // into the seed columns' ghost segments.
        {
            let (_, v_ghost) = self.v_ext[0].split_at_mut(nl);
            let mv_ghost = match known_mw {
                Some(_) => {
                    let (_, g) = self.mv_ext[0].split_at_mut(nl);
                    Some(g)
                }
                None => None,
            };
            complete(v_ghost, mv_ghost);
        }
        if mv_cols > 0 && known_mw.is_none() {
            let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
            let (_, tail) = self.mv_ext[0].split_at_mut(nl);
            self.pk
                .pointwise_mul(&self.weights_ext[nl..], &self.v_ext[0][nl..], tail);
            counters.record_precond(self.m_flops);
        }

        for j in 0..s_levels {
            let _level = spcg_obs::span(self.track.as_ref(), Phase::MpkLevel);
            let rows = self.gz.reach_len(s_levels - j - 1);
            let (lower, upper) = self.v_ext.split_at_mut(j + 1);
            let t = &mut upper[0];
            if j == 0 {
                // Interior rows already hold their results; only the
                // frontier rows (which read ghost operands) remain.
                let _f = spcg_obs::span(self.track.as_ref(), Phase::Frontier);
                match self.format {
                    SparseFormat::Csr => self.gz.spmv_rows_list_par(
                        &self.pk,
                        self.gz.frontier_rows(rows),
                        &self.mv_ext[j],
                        t,
                    ),
                    SparseFormat::Sell => {
                        self.gz
                            .spmv_frontier_sell(&self.pk, rows, &self.mv_ext[j], t)
                    }
                }
            } else {
                // Levels past the first have no exchange to hide, but run
                // the same split schedule for a uniform execution shape.
                {
                    let _s = spcg_obs::span(self.track.as_ref(), Phase::Spmv);
                    match self.format {
                        SparseFormat::Csr => self.gz.spmv_rows_list_par(
                            &self.pk,
                            self.gz.interior_rows(),
                            &self.mv_ext[j],
                            t,
                        ),
                        SparseFormat::Sell => {
                            self.gz.spmv_interior_sell(&self.pk, &self.mv_ext[j], t)
                        }
                    }
                }
                let _f = spcg_obs::span(self.track.as_ref(), Phase::Frontier);
                match self.format {
                    SparseFormat::Csr => self.gz.spmv_rows_list_par(
                        &self.pk,
                        self.gz.frontier_rows(rows),
                        &self.mv_ext[j],
                        t,
                    ),
                    SparseFormat::Sell => {
                        self.gz
                            .spmv_frontier_sell(&self.pk, rows, &self.mv_ext[j], t)
                    }
                }
            }
            counters.record_spmv(self.spmv_flops);
            let theta = params.theta[j];
            let inv_gamma = 1.0 / params.gamma[j];
            if theta != 0.0 {
                self.pk.axpy(-theta, &lower[j][..rows], &mut t[..rows]);
            }
            if j >= 1 && params.mu[j - 1] != 0.0 {
                self.pk
                    .axpy(-params.mu[j - 1], &lower[j - 1][..rows], &mut t[..rows]);
            }
            if inv_gamma != 1.0 {
                self.pk.scale(inv_gamma, &mut t[..rows]);
            }
            counters.blas1_flops += params.extra_flops_for_column(j + 1, self.n_global);
            if j + 1 < mv_cols {
                let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
                self.pk.pointwise_mul(
                    &self.weights_ext[..rows],
                    &self.v_ext[j + 1][..rows],
                    &mut self.mv_ext[j + 1][..rows],
                );
                counters.record_precond(self.m_flops);
            }
        }

        for j in 0..v_cols {
            v.col_mut(j).copy_from_slice(&self.v_ext[j][..nl]);
        }
        for j in 0..mv_cols {
            mv.col_mut(j).copy_from_slice(&self.mv_ext[j][..nl]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpk::Mpk;
    use spcg_precond::{Jacobi, Preconditioner};
    use spcg_sparse::generators::poisson::poisson_2d;
    use spcg_sparse::partition::BlockRowPartition;

    fn serial_reference(
        a: &CsrMatrix,
        m: &dyn Preconditioner,
        w: &[f64],
        known_mw: Option<&[f64]>,
        params: &BasisParams,
        v_cols: usize,
        mv_cols: usize,
    ) -> (MultiVector, MultiVector, Counters) {
        let n = a.nrows();
        let mut v = MultiVector::zeros(n, v_cols);
        let mut mv = MultiVector::zeros(n, mv_cols);
        let mut c = Counters::new();
        Mpk::new(a, m).run(w, known_mw, params, &mut v, &mut mv, &mut c);
        (v, mv, c)
    }

    #[test]
    fn matches_serial_bitwise_across_ranks() {
        let a = poisson_2d(9);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let s = 4;
        let params = BasisParams::chebyshev(0.2, 7.5, s);
        let (v_ref, mv_ref, c_ref) = serial_reference(&a, &m, &w, None, &params, s + 1, s);

        let weights: Vec<f64> = (0..n).map(|i| 1.0 / a.get(i, i)).collect();
        let part = BlockRowPartition::balanced(n, 3);
        let mut c_sum = Counters::new();
        for p in 0..3 {
            let (lo, hi) = part.range(p);
            let mut dk = DistMpk::new(&a, lo, hi, s, &weights, m.flops_per_apply());
            let w_ext = dk.ghost().extend_from_global(&w);
            let mut v = MultiVector::zeros(hi - lo, s + 1);
            let mut mv = MultiVector::zeros(hi - lo, s);
            let mut c = Counters::new();
            dk.run(&w_ext, None, &params, &mut v, &mut mv, &mut c);
            for j in 0..=s {
                for i in 0..hi - lo {
                    assert_eq!(
                        v.col(j)[i],
                        v_ref.col(j)[lo + i],
                        "rank {p} v col {j} row {i}"
                    );
                }
            }
            for j in 0..s {
                assert_eq!(mv.col(j), &mv_ref.col(j)[lo..hi], "rank {p} mv col {j}");
            }
            if p == 0 {
                c_sum = c;
            } else {
                assert_eq!(c, c_sum, "per-rank counters must agree");
            }
        }
        // Each rank charges exactly the serial (global) cost.
        assert_eq!(c_sum, c_ref);
    }

    #[test]
    fn supports_known_mw_and_full_mv_cols() {
        // CA-PCG's Q-run: mv_cols == v_cols with the seed's M⁻¹ known.
        let a = poisson_2d(7);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let mw = m.apply_alloc(&w);
        let s = 3;
        let params = BasisParams::monomial(s);
        let (v_ref, mv_ref, c_ref) = serial_reference(&a, &m, &w, Some(&mw), &params, s + 1, s + 1);

        let weights: Vec<f64> = (0..n).map(|i| 1.0 / a.get(i, i)).collect();
        let (lo, hi) = (14, 35);
        let mut dk = DistMpk::new(&a, lo, hi, s, &weights, m.flops_per_apply());
        let w_ext = dk.ghost().extend_from_global(&w);
        let mw_ext = dk.ghost().extend_from_global(&mw);
        let mut v = MultiVector::zeros(hi - lo, s + 1);
        let mut mv = MultiVector::zeros(hi - lo, s + 1);
        let mut c = Counters::new();
        dk.run(&w_ext, Some(&mw_ext), &params, &mut v, &mut mv, &mut c);
        for j in 0..=s {
            assert_eq!(v.col(j), &v_ref.col(j)[lo..hi], "v col {j}");
            assert_eq!(mv.col(j), &mv_ref.col(j)[lo..hi], "mv col {j}");
        }
        assert_eq!(c, c_ref);
    }

    #[test]
    fn fewer_levels_than_depth_allowed() {
        // CA-PCG's R-run uses s columns against the same depth-s plan.
        let a = poisson_2d(6);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let s = 4;
        let params = BasisParams::chebyshev(0.3, 7.0, s);
        let (v_ref, _, _) = serial_reference(&a, &m, &w, None, &params, s, s);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / a.get(i, i)).collect();
        let (lo, hi) = (0, 20);
        let mut dk = DistMpk::new(&a, lo, hi, s, &weights, m.flops_per_apply());
        let w_ext = dk.ghost().extend_from_global(&w);
        let mut v = MultiVector::zeros(hi - lo, s);
        let mut mv = MultiVector::zeros(hi - lo, s);
        let mut c = Counters::new();
        dk.run(&w_ext, None, &params, &mut v, &mut mv, &mut c);
        for j in 0..s {
            assert_eq!(v.col(j), &v_ref.col(j)[lo..hi], "v col {j}");
        }
    }

    #[test]
    fn threaded_kernel_matches_serial_bitwise() {
        let a = poisson_2d(24);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| ((i * 11 % 17) as f64) - 8.0).collect();
        let s = 4;
        let params = BasisParams::chebyshev(0.2, 7.5, s);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / a.get(i, i)).collect();
        let (lo, hi) = (n / 3, 4 * n / 5);
        let mut dk_ref = DistMpk::new(&a, lo, hi, s, &weights, m.flops_per_apply());
        let w_ext = dk_ref.ghost().extend_from_global(&w);
        let mut v_ref = MultiVector::zeros(hi - lo, s + 1);
        let mut mv_ref = MultiVector::zeros(hi - lo, s);
        let mut c_ref = Counters::new();
        dk_ref.run(&w_ext, None, &params, &mut v_ref, &mut mv_ref, &mut c_ref);
        for t in [2usize, 4, 8] {
            let pk = spcg_sparse::ParKernels::new(t);
            let mut dk = DistMpk::new_par(&a, lo, hi, s, &weights, m.flops_per_apply(), pk);
            let mut v = MultiVector::zeros(hi - lo, s + 1);
            let mut mv = MultiVector::zeros(hi - lo, s);
            let mut c = Counters::new();
            dk.run(&w_ext, None, &params, &mut v, &mut mv, &mut c);
            for j in 0..=s {
                assert_eq!(v.col(j), v_ref.col(j), "threads {t} v col {j}");
            }
            for j in 0..s {
                assert_eq!(mv.col(j), mv_ref.col(j), "threads {t} mv col {j}");
            }
            assert_eq!(c, c_ref, "threads {t}: counters must not change");
        }
    }

    /// The overlapped kernel (interior SpMV before the ghost segments
    /// exist, frontier after) must be bitwise equal to the blocking kernel
    /// in outputs *and* counter charges, for any thread count.
    #[test]
    fn run_overlapped_matches_run_bitwise() {
        let a = poisson_2d(13);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let s = 4;
        let params = BasisParams::chebyshev(0.2, 7.5, s);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / a.get(i, i)).collect();
        let part = BlockRowPartition::balanced(n, 3);
        for p in 0..3 {
            let (lo, hi) = part.range(p);
            let mut dk = DistMpk::new(&a, lo, hi, s, &weights, m.flops_per_apply());
            let w_ext = dk.ghost().extend_from_global(&w);
            let mut v_ref = MultiVector::zeros(hi - lo, s + 1);
            let mut mv_ref = MultiVector::zeros(hi - lo, s);
            let mut c_ref = Counters::new();
            dk.run(&w_ext, None, &params, &mut v_ref, &mut mv_ref, &mut c_ref);

            for t in [1usize, 2, 4] {
                let pk = spcg_sparse::ParKernels::new(t);
                let mut dk = DistMpk::new_par(&a, lo, hi, s, &weights, m.flops_per_apply(), pk);
                let ghosts: Vec<usize> = dk.ghost().ghost_indices().to_vec();
                let mut v = MultiVector::zeros(hi - lo, s + 1);
                let mut mv = MultiVector::zeros(hi - lo, s);
                let mut c = Counters::new();
                let mut completions = 0;
                dk.run_overlapped(
                    &w[lo..hi],
                    None,
                    &params,
                    &mut v,
                    &mut mv,
                    &mut c,
                    &mut |wg, mwg| {
                        completions += 1;
                        assert!(mwg.is_none());
                        for (dst, &g) in wg.iter_mut().zip(&ghosts) {
                            *dst = w[g];
                        }
                    },
                );
                assert_eq!(completions, 1, "exactly one exchange completion");
                for j in 0..=s {
                    assert_eq!(v.col(j), v_ref.col(j), "rank {p} t {t} v col {j}");
                }
                for j in 0..s {
                    assert_eq!(mv.col(j), mv_ref.col(j), "rank {p} t {t} mv col {j}");
                }
                assert_eq!(c, c_ref, "rank {p} t {t}: counters must not change");
            }
        }
    }

    /// CA-PCG's Q-run shape: `mv_cols == v_cols` with the seed's `M⁻¹`
    /// known, so the completion must fill both ghost segments.
    #[test]
    fn run_overlapped_supports_known_mw() {
        let a = poisson_2d(7);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let mw = m.apply_alloc(&w);
        let s = 3;
        let params = BasisParams::monomial(s);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / a.get(i, i)).collect();
        let (lo, hi) = (14, 35);
        let mut dk = DistMpk::new(&a, lo, hi, s, &weights, m.flops_per_apply());
        let ghosts: Vec<usize> = dk.ghost().ghost_indices().to_vec();
        let w_ext = dk.ghost().extend_from_global(&w);
        let mw_ext = dk.ghost().extend_from_global(&mw);
        let mut v_ref = MultiVector::zeros(hi - lo, s + 1);
        let mut mv_ref = MultiVector::zeros(hi - lo, s + 1);
        let mut c_ref = Counters::new();
        dk.run(
            &w_ext,
            Some(&mw_ext),
            &params,
            &mut v_ref,
            &mut mv_ref,
            &mut c_ref,
        );

        let mut v = MultiVector::zeros(hi - lo, s + 1);
        let mut mv = MultiVector::zeros(hi - lo, s + 1);
        let mut c = Counters::new();
        dk.run_overlapped(
            &w[lo..hi],
            Some(&mw[lo..hi]),
            &params,
            &mut v,
            &mut mv,
            &mut c,
            &mut |wg, mwg| {
                for (dst, &g) in wg.iter_mut().zip(&ghosts) {
                    *dst = w[g];
                }
                for (dst, &g) in mwg.expect("mw ghosts needed").iter_mut().zip(&ghosts) {
                    *dst = mw[g];
                }
            },
        );
        for j in 0..=s {
            assert_eq!(v.col(j), v_ref.col(j), "v col {j}");
            assert_eq!(mv.col(j), mv_ref.col(j), "mv col {j}");
        }
        assert_eq!(c, c_ref);
    }

    /// SELL format must reproduce the CSR kernels bitwise on both the
    /// blocking and the overlapped paths, for every rank and thread count.
    #[test]
    fn sell_format_matches_csr_bitwise() {
        let a = poisson_2d(13);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 4.0).collect();
        let s = 4;
        let params = BasisParams::newton(&[1.0, 0.5, 2.0, 1.5], s);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / a.get(i, i)).collect();
        let part = BlockRowPartition::balanced(n, 3);
        for p in 0..3 {
            let (lo, hi) = part.range(p);
            let mut dk = DistMpk::new(&a, lo, hi, s, &weights, m.flops_per_apply());
            let w_ext = dk.ghost().extend_from_global(&w);
            let mut v_ref = MultiVector::zeros(hi - lo, s + 1);
            let mut mv_ref = MultiVector::zeros(hi - lo, s);
            let mut c_ref = Counters::new();
            dk.run(&w_ext, None, &params, &mut v_ref, &mut mv_ref, &mut c_ref);

            for t in [1usize, 2, 4] {
                let pk = spcg_sparse::ParKernels::new(t);
                let mut dk = DistMpk::new_par(&a, lo, hi, s, &weights, m.flops_per_apply(), pk)
                    .with_format(SparseFormat::Sell);
                let ghosts: Vec<usize> = dk.ghost().ghost_indices().to_vec();
                let mut v = MultiVector::zeros(hi - lo, s + 1);
                let mut mv = MultiVector::zeros(hi - lo, s);
                let mut c = Counters::new();
                dk.run(&w_ext, None, &params, &mut v, &mut mv, &mut c);
                for j in 0..=s {
                    assert_eq!(v.col(j), v_ref.col(j), "rank {p} t {t} v col {j}");
                }
                for j in 0..s {
                    assert_eq!(mv.col(j), mv_ref.col(j), "rank {p} t {t} mv col {j}");
                }
                assert_eq!(c, c_ref, "rank {p} t {t}: counters must not change");

                let mut v = MultiVector::zeros(hi - lo, s + 1);
                let mut mv = MultiVector::zeros(hi - lo, s);
                let mut c = Counters::new();
                dk.run_overlapped(
                    &w[lo..hi],
                    None,
                    &params,
                    &mut v,
                    &mut mv,
                    &mut c,
                    &mut |wg, mwg| {
                        assert!(mwg.is_none());
                        for (dst, &g) in wg.iter_mut().zip(&ghosts) {
                            *dst = w[g];
                        }
                    },
                );
                for j in 0..=s {
                    assert_eq!(v.col(j), v_ref.col(j), "overlap rank {p} t {t} v col {j}");
                }
                for j in 0..s {
                    assert_eq!(
                        mv.col(j),
                        mv_ref.col(j),
                        "overlap rank {p} t {t} mv col {j}"
                    );
                }
                assert_eq!(c, c_ref, "overlap rank {p} t {t}: counters must not change");
            }
        }
    }

    #[test]
    #[should_panic(expected = "levels exceed ghost depth")]
    fn rejects_too_many_levels() {
        let a = poisson_2d(4);
        let weights = vec![1.0; 16];
        let mut dk = DistMpk::new(&a, 0, 8, 2, &weights, 0);
        let w_ext = vec![1.0; dk.ghost().ext_len()];
        let params = BasisParams::monomial(4);
        let mut v = MultiVector::zeros(8, 4);
        let mut mv = MultiVector::zeros(8, 3);
        dk.run(&w_ext, None, &params, &mut v, &mut mv, &mut Counters::new());
    }
}
