//! Local-reduction benchmark: the blocked Gram product `UᵀS` (one fused
//! reduction, BLAS3-shaped) versus 2s separate dot products (BLAS1) — the
//! communication/computation trade at the heart of Table 1's "local
//! reductions" column.

use spcg_bench::harness::bench;
use spcg_sparse::{blas, MultiVector};
use std::hint::black_box;

fn main() {
    let n = 200_000;
    let s = 10;
    let u = MultiVector::from_columns(
        &(0..s)
            .map(|j| (0..n).map(|i| ((i * (j + 1)) % 17) as f64 - 8.0).collect())
            .collect::<Vec<_>>(),
    );
    let sm = MultiVector::from_columns(
        &(0..s + 1)
            .map(|j| (0..n).map(|i| ((i * (j + 3)) % 23) as f64 - 11.0).collect())
            .collect::<Vec<_>>(),
    );
    bench("local_reductions/gram_UtS_s10", || {
        black_box(u.gram(&sm));
    });
    bench("local_reductions/dots_2s_separate", || {
        let mut acc = 0.0;
        for j in 0..2 * s {
            let (x, y) = (u.col(j % s), sm.col(j % (s + 1)));
            acc += blas::dot(black_box(x), black_box(y));
        }
        black_box(acc);
    });
}
