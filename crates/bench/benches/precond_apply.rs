//! Preconditioner application benchmark (Jacobi vs Chebyshev degrees).

use spcg_bench::harness::bench;
use spcg_precond::{ChebyshevPrecond, Jacobi, Preconditioner, Ssor};
use spcg_sparse::generators::poisson::poisson_2d;
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let a = Arc::new(poisson_2d(128));
    let n = a.nrows();
    let r: Vec<f64> = (0..n).map(|i| ((i % 19) as f64) - 9.0).collect();
    let mut z = vec![0.0f64; n];
    let jac = Jacobi::new(&a);
    bench("precond_apply/jacobi", || jac.apply(black_box(&r), &mut z));
    for deg in [1usize, 3, 6] {
        let p = ChebyshevPrecond::from_matrix(Arc::clone(&a), deg, 30.0);
        bench(&format!("precond_apply/chebyshev_deg{deg}"), || {
            p.apply(black_box(&r), &mut z)
        });
    }
    let ssor = Ssor::new(&a, 1.0);
    bench("precond_apply/ssor", || ssor.apply(black_box(&r), &mut z));
}
