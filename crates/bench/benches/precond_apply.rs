//! Preconditioner application benchmark (Jacobi vs Chebyshev degrees).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spcg_precond::{ChebyshevPrecond, Jacobi, Preconditioner, Ssor};
use spcg_sparse::generators::poisson::poisson_2d;
use std::sync::Arc;

fn bench_precond(c: &mut Criterion) {
    let a = Arc::new(poisson_2d(128));
    let n = a.nrows();
    let r: Vec<f64> = (0..n).map(|i| ((i % 19) as f64) - 9.0).collect();
    let mut z = vec![0.0f64; n];
    let mut g = c.benchmark_group("precond_apply");
    let jac = Jacobi::new(&a);
    g.bench_function("jacobi", |b| b.iter(|| jac.apply(black_box(&r), &mut z)));
    for deg in [1usize, 3, 6] {
        let p = ChebyshevPrecond::from_matrix(Arc::clone(&a), deg, 30.0);
        g.bench_function(format!("chebyshev_deg{deg}"), |b| {
            b.iter(|| p.apply(black_box(&r), &mut z))
        });
    }
    let ssor = Ssor::new(&a, 1.0);
    g.bench_function("ssor", |b| b.iter(|| ssor.apply(black_box(&r), &mut z)));
    g.finish();
}

criterion_group!(benches, bench_precond);
criterion_main!(benches);
