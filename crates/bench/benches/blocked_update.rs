//! Vector-update benchmark: sPCG's blocked BLAS3 update `P ← U + P·B`
//! versus the equivalent FLOPs as BLAS1 axpys (CA-PCG3's access pattern) —
//! the performance argument of §4.1.

use spcg_bench::harness::bench;
use spcg_sparse::{blas, DenseMat, MultiVector};
use std::hint::black_box;

fn main() {
    let n = 100_000;
    let s = 10;
    let cols: Vec<Vec<f64>> = (0..s)
        .map(|j| (0..n).map(|i| ((i + j) % 13) as f64 - 6.0).collect())
        .collect();
    let u = MultiVector::from_columns(&cols);
    let bmat = DenseMat::from_fn(s, s, |i, j| ((i * s + j) % 7) as f64 * 0.1 - 0.3);

    {
        let mut p = u.clone();
        let mut scratch = MultiVector::zeros(n, s);
        bench("block_update_s10/blas3_blocked", || {
            p.blocked_update(black_box(&u), black_box(&bmat), &mut scratch);
        });
    }
    {
        // s² axpys + s copies — identical FLOPs, strided BLAS1 traffic.
        let p: Vec<Vec<f64>> = cols.clone();
        bench("block_update_s10/blas1_axpys_same_flops", || {
            for j in 0..s {
                let mut out = u.col(j).to_vec();
                for (l, pl) in p.iter().enumerate() {
                    blas::axpy(bmat[(l, j)], black_box(pl), &mut out);
                }
                black_box(&out);
            }
        });
    }
}
