//! Vector-update benchmark: sPCG's blocked BLAS3 update `P ← U + P·B`
//! versus the equivalent FLOPs as BLAS1 axpys (CA-PCG3's access pattern) —
//! the performance argument of §4.1.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spcg_sparse::{blas, DenseMat, MultiVector};

fn bench_update(c: &mut Criterion) {
    let n = 100_000;
    let s = 10;
    let cols: Vec<Vec<f64>> =
        (0..s).map(|j| (0..n).map(|i| ((i + j) % 13) as f64 - 6.0).collect()).collect();
    let u = MultiVector::from_columns(&cols);
    let bmat = DenseMat::from_fn(s, s, |i, j| ((i * s + j) % 7) as f64 * 0.1 - 0.3);
    let mut g = c.benchmark_group("block_update_s10");
    g.bench_function("blas3_blocked", |b| {
        let mut p = u.clone();
        let mut scratch = MultiVector::zeros(n, s);
        b.iter(|| {
            p.blocked_update(black_box(&u), black_box(&bmat), &mut scratch);
        })
    });
    g.bench_function("blas1_axpys_same_flops", |b| {
        // s² axpys + s copies — identical FLOPs, strided BLAS1 traffic.
        let mut p: Vec<Vec<f64>> = cols.clone();
        b.iter(|| {
            for j in 0..s {
                let mut out = u.col(j).to_vec();
                for (l, pl) in p.iter().enumerate() {
                    blas::axpy(bmat[(l, j)], black_box(pl), &mut out);
                }
                black_box(&out);
            }
            p[0][0] += 0.0;
        })
    });
    g.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
