//! End-to-end solver benchmark: wall-clock per fixed iteration budget for
//! every method on one mid-size problem (the local-computation side of
//! Figure 1, measured rather than modeled).

use spcg_bench::harness::bench;
use spcg_precond::Jacobi;
use spcg_solvers::{solve, Engine, Method, Problem, SolveOptions, StoppingCriterion};
use spcg_sparse::generators::paper_rhs;
use spcg_sparse::generators::poisson::poisson_3d;
use std::hint::black_box;

fn main() {
    let a = poisson_3d(20);
    let m = Jacobi::new(&a);
    let b = paper_rhs(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg_solvers::chebyshev_basis(&problem, 20, 0.05);
    let opts = SolveOptions::builder()
        .tol(1e-30) // never reached: fixed 100-iteration budget
        .max_iters(100)
        .criterion(StoppingCriterion::PrecondMNorm)
        .build();
    let methods = [
        ("pcg", Method::Pcg),
        ("pcg3", Method::Pcg3),
        (
            "spcg_s10",
            Method::SPcg {
                s: 10,
                basis: basis.clone(),
            },
        ),
        ("spcg_mon_s10", Method::SPcgMon { s: 10 }),
        (
            "capcg_s10",
            Method::CaPcg {
                s: 10,
                basis: basis.clone(),
            },
        ),
        (
            "capcg3_s10",
            Method::CaPcg3 {
                s: 10,
                basis: basis.clone(),
            },
        ),
    ];
    for (name, method) in &methods {
        bench(&format!("solve_100_iters_poisson20/{name}"), || {
            black_box(solve(method, &problem, &opts, Engine::Serial));
        });
    }
}
