//! Matrix Powers Kernel benchmark: cost of building the s-step basis, and
//! the (paper §4.2) overhead of arbitrary bases over the monomial one.

use spcg_basis::{BasisParams, Mpk};
use spcg_bench::harness::bench;
use spcg_dist::Counters;
use spcg_precond::Jacobi;
use spcg_sparse::generators::poisson::poisson_2d;
use spcg_sparse::MultiVector;
use std::hint::black_box;

fn main() {
    let a = poisson_2d(128);
    let n = a.nrows();
    let m = Jacobi::new(&a);
    let mpk = Mpk::new(&a, &m);
    let w: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.1).sin()).collect();

    for (name, params) in [
        ("mpk_s10/monomial", BasisParams::monomial(10)),
        ("mpk_s10/newton", BasisParams::newton(&[0.5; 10], 10)),
        ("mpk_s10/chebyshev", BasisParams::chebyshev(0.1, 1.9, 10)),
    ] {
        let mut v = MultiVector::zeros(n, 11);
        let mut mv = MultiVector::zeros(n, 10);
        bench(name, || {
            let mut counters = Counters::new();
            mpk.run(black_box(&w), None, &params, &mut v, &mut mv, &mut counters);
            black_box(&v);
        });
    }
}
