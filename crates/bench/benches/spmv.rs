//! SpMV kernel benchmark — the dominant per-iteration cost of every solver.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spcg_sparse::generators::poisson::{poisson_2d, poisson_3d};
use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    let cases = [
        ("poisson2d_128", poisson_2d(128)),
        ("poisson3d_24", poisson_3d(24)),
        (
            "banded_loguni_20k",
            spd_with_spectrum(20_000, &SpectrumShape::LogUniform { kappa: 1e6, jitter: 0.1 }, 1.0, 4, 7),
        ),
    ];
    for (name, a) in cases {
        let x = vec![1.0f64; a.ncols()];
        let mut y = vec![0.0f64; a.nrows()];
        g.throughput(criterion::Throughput::Elements(a.nnz() as u64));
        g.bench_function(name, |b| {
            b.iter(|| {
                a.spmv(black_box(&x), &mut y);
                black_box(&y);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
