//! SpMV kernel benchmark — the dominant per-iteration cost of every solver.

use spcg_bench::harness::bench_with_throughput;
use spcg_sparse::generators::poisson::{poisson_2d, poisson_3d};
use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
use std::hint::black_box;

fn main() {
    let cases = [
        ("spmv/poisson2d_128", poisson_2d(128)),
        ("spmv/poisson3d_24", poisson_3d(24)),
        (
            "spmv/banded_loguni_20k",
            spd_with_spectrum(
                20_000,
                &SpectrumShape::LogUniform {
                    kappa: 1e6,
                    jitter: 0.1,
                },
                1.0,
                4,
                7,
            ),
        ),
    ];
    for (name, a) in cases {
        let x = vec![1.0f64; a.ncols()];
        let mut y = vec![0.0f64; a.nrows()];
        bench_with_throughput(name, a.nnz() as u64, || {
            a.spmv(black_box(&x), &mut y);
            black_box(&y);
        });
    }
}
