//! Minimal wall-clock benchmark harness.
//!
//! The workspace builds offline, so the kernel benchmarks under
//! `crates/bench/benches/` use this self-contained timer instead of an
//! external benchmarking framework: warm up, pick an iteration count that
//! fills a target window, repeat over several samples, and report the best
//! sample (least scheduler noise) in ns/iter.

use std::time::{Duration, Instant};

/// Target measurement window per sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(100);
/// Samples per benchmark; the minimum is reported.
const SAMPLES: usize = 5;

/// Times `f` and prints `name: <t> ns/iter (<throughput>)`.
///
/// `elements_per_iter`, when nonzero, adds an `Melem/s` throughput column
/// (used by the SpMV benchmark with nnz as the element count).
pub fn bench_with_throughput<F: FnMut()>(name: &str, elements_per_iter: u64, mut f: F) {
    // Warm-up and calibration: find iters filling the sample window.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt >= SAMPLE_WINDOW / 4 || iters >= 1 << 30 {
            let per_iter = dt.as_nanos().max(1) as u64 / iters;
            iters = (SAMPLE_WINDOW.as_nanos() as u64 / per_iter.max(1)).max(1);
            break;
        }
        iters *= 4;
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per_iter);
    }
    if elements_per_iter > 0 {
        let melem_s = elements_per_iter as f64 / best * 1e3;
        println!("{name:40} {best:12.1} ns/iter  {melem_s:10.1} Melem/s");
    } else {
        println!("{name:40} {best:12.1} ns/iter");
    }
}

/// Times `f` and prints `name: <t> ns/iter`.
pub fn bench<F: FnMut()>(name: &str, f: F) {
    bench_with_throughput(name, 0, f);
}
