//! Saturation bench for the batched multi-RHS solve service. Emits
//! `BENCH_service.json`: requests/s and GF/s of the blocked PCG path at
//! batch widths k ∈ {1, 2, 4, 8, 16} on a 7-point 3D Poisson matrix,
//! the cold-start vs cache-hit setup cost of the fingerprint cache, a
//! plain `solve()` baseline for the width-1 overhead gate, and the
//! headline comparison: the same 8 right-hand sides solved sequentially
//! vs as one width-8 batch (`speedup_k8_batched_vs_sequential`).
//!
//! Run: `cargo run --release -p spcg-bench --bin service`
//!
//! `SPCG_QUICK=1` shrinks the grid and repetition count for smoke runs;
//! `SPCG_GRID=G` overrides the grid edge. Reported numbers are
//! best-of-reps wall-clock.
//!
//! The solve uses the explicit true-residual criterion, so each
//! iteration runs two matrix streams (A·P and A·X for the check) — both
//! batched through the `spmm` kernels, which is exactly the traffic the
//! service amortizes across a batch. Per-column vector work (dots,
//! axpys, preconditioner applies) is replicated verbatim per right-hand
//! side to keep every column bitwise identical to its standalone solve,
//! so the k-scaling curve isolates the matrix-stream amortization alone.
//! The requests/s curve must be monotone non-decreasing in k — that (and
//! the width-1 overhead vs plain `solve()`) is what `benchcheck` gates.

use spcg_bench::{quick_mode, write_results};
use spcg_precond::{Jacobi, Preconditioner};
use spcg_service::{ServiceConfig, SolveService, SolveSpec};
use spcg_solvers::{solve, Method, Problem, StoppingCriterion};
use spcg_sparse::generators::paper_rhs;
use spcg_sparse::generators::poisson::poisson_3d;
use spcg_sparse::CsrMatrix;
use std::sync::Arc;
use std::time::Instant;

const WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// Distinct right-hand sides: the paper vector, rescaled and perturbed
/// per column so columns are not trivially collinear.
fn rhs_family(a: &CsrMatrix, k: usize) -> Vec<Vec<f64>> {
    let base = paper_rhs(a);
    (0..k)
        .map(|j| {
            base.iter()
                .enumerate()
                .map(|(i, &v)| v * (1.0 + 0.25 * j as f64) + ((i + 5 * j) % 11) as f64 * 0.01)
                .collect()
        })
        .collect()
}

fn json_array(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let quick = quick_mode();
    let default_grid = if quick { 20 } else { 48 };
    let grid: usize = spcg_solvers::env::parsed("SPCG_GRID").unwrap_or(default_grid);
    let reps = if quick { 2 } else { 7 };
    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());

    eprintln!(
        "[service] building 3D Poisson {grid}^3 ({} rows), reps = {reps}",
        grid * grid * grid
    );
    let a = Arc::new(poisson_3d(grid));
    let n = a.nrows();
    let nnz = a.nnz();

    let spec = SolveSpec::new(
        Method::Pcg,
        Jacobi::new(&a).spec().expect("Jacobi always has a spec"),
    )
    .with_opts(
        // Service-typical tolerance: shorter solves keep each timed
        // window small enough that best-of-reps can dodge co-tenant
        // interference at every batch width, and the per-iteration work
        // mix (and hence the k-scaling curve) is tolerance-independent.
        spcg_solvers::SolveOptions::default()
            .with_criterion(StoppingCriterion::TrueResidual2Norm)
            .with_tol(1e-6),
    )
    .with_tuned_basis();

    // Cold start: the first submission pays the whole setup (fingerprint,
    // preconditioner build, row schedule, Ritz warm-up) plus the solve.
    let svc = SolveService::new(ServiceConfig::default());
    let b0 = paper_rhs(&a);
    let t0 = Instant::now();
    let handle = svc.handle_for(&a, &spec);
    let cold_setup_s = t0.elapsed().as_secs_f64();
    let cold = handle.solve_one(&b0);
    let cold_start_solve_s = t0.elapsed().as_secs_f64();
    assert!(cold.converged(), "cold solve: {:?}", cold.outcome);
    // Cache hit: the same fingerprint answered from the LRU — the cost is
    // one content hash plus the lookup.
    let mut hit_setup_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = svc.handle_for(&a, &spec);
        hit_setup_s = hit_setup_s.min(t.elapsed().as_secs_f64());
    }
    let sc = handle.setup_cost();
    eprintln!(
        "[service] setup: cold {:.1}ms (precond {:.1}ms, format {:.1}ms, warmup {:.1}ms), \
         hit {:.3}ms, cold-start solve {:.1}ms",
        cold_setup_s * 1e3,
        sc.precond.as_secs_f64() * 1e3,
        sc.format.as_secs_f64() * 1e3,
        sc.warmup.as_secs_f64() * 1e3,
        hit_setup_s * 1e3,
        cold_start_solve_s * 1e3,
    );

    // Plain solve() baseline with the identical configuration: the 10×
    // gate on width-1 service overhead compares against this.
    let m = spec.precond.build(&a);
    let problem = Problem::new(&a, m.as_ref(), &b0);
    let mut plain_solve_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let res = solve(handle.method(), &problem, &spec.opts, spec.engine);
        plain_solve_s = plain_solve_s.min(t.elapsed().as_secs_f64());
        assert!(res.converged(), "plain solve: {:?}", res.outcome);
    }

    // Batch-width sweep through the service's wide entry point. All
    // submissions hit the resident handle; per width, requests/s is the
    // batch width over the best-of-reps wall-clock and GF/s uses the
    // instrumented per-column counters.
    let mut requests_per_s = Vec::new();
    let mut gflops = Vec::new();
    let mut batch_k1_s = 0.0;
    let mut batch_k8_s = 0.0;
    for &k in &WIDTHS {
        let bs = rhs_family(&a, k);
        let refs: Vec<&[f64]> = bs.iter().map(Vec::as_slice).collect();
        let mut best = f64::INFINITY;
        let mut flops = 0u64;
        for _ in 0..reps {
            let t = Instant::now();
            let results = svc.submit_batch(&a, &spec, &refs, None);
            let dt = t.elapsed().as_secs_f64();
            for (j, res) in results.iter().enumerate() {
                assert!(res.converged(), "k={k} col {j}: {:?}", res.outcome);
            }
            if dt < best {
                best = dt;
                flops = results.iter().map(|r| r.counters.total_flops()).sum();
            }
        }
        if k == 1 {
            batch_k1_s = best;
        }
        if k == 8 {
            batch_k8_s = best;
        }
        requests_per_s.push(k as f64 / best);
        gflops.push(flops as f64 / best / 1e9);
        eprintln!(
            "[service] k={k}: {:.3} req/s, {:.2} GF/s ({best:.3}s per batch)",
            requests_per_s.last().unwrap(),
            gflops.last().unwrap(),
        );
    }

    // Headline comparison: the same 8 right-hand sides solved one
    // request at a time through the resident handle (the k = 1
    // sequential baseline the batched path is measured against). Same
    // work, same cache state — the only difference is batching.
    let seq_family = rhs_family(&a, 8);
    let mut seq_k8_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for b in &seq_family {
            let refs = [b.as_slice()];
            let results = svc.submit_batch(&a, &spec, &refs, None);
            assert!(
                results[0].converged(),
                "sequential: {:?}",
                results[0].outcome
            );
        }
        seq_k8_s = seq_k8_s.min(t.elapsed().as_secs_f64());
    }
    let speedup_k8 = seq_k8_s / batch_k8_s;
    eprintln!(
        "[service] 8 RHS sequential {seq_k8_s:.3}s vs batched {batch_k8_s:.3}s \
         -> {speedup_k8:.3}x batched speedup"
    );

    let widths_list: Vec<String> = WIDTHS.iter().map(|w| w.to_string()).collect();
    let out = format!(
        "{{\n  \"matrix\": \"poisson3d_{grid}\",\n  \"n\": {n},\n  \"nnz\": {nnz},\n  \"reps\": {reps},\n  \"nproc\": {nproc},\n  \"batch_widths\": [{}],\n  \"requests_per_s\": {},\n  \"gflops\": {{\n    \"batched_pcg\": {}\n  }},\n  \"plain_solve_seconds\": {:.4},\n  \"batch_k1_seconds\": {:.4},\n  \"sequential_8rhs_seconds\": {:.4},\n  \"batch_8rhs_seconds\": {:.4},\n  \"speedup_k8_batched_vs_sequential\": {:.4},\n  \"setup\": {{\n    \"cold_seconds\": {:.4},\n    \"hit_seconds\": {:.6},\n    \"cold_start_solve_seconds\": {:.4},\n    \"hit_over_cold_solve\": {:.6}\n  }}\n}}\n",
        widths_list.join(", "),
        json_array(&requests_per_s),
        json_array(&gflops),
        plain_solve_s,
        batch_k1_s,
        seq_k8_s,
        batch_k8_s,
        speedup_k8,
        cold_setup_s,
        hit_setup_s,
        cold_start_solve_s,
        hit_setup_s / cold_start_solve_s,
    );
    write_results("BENCH_service.json", &out);
}
