//! Trace-calibrated strong-scaling replay (`results/BENCH_scale.json`).
//!
//! `fig1` prices one solve's counters with the *hand-picked* default
//! cluster. This check closes the loop: it **measures** each
//! communication backend — thread (shared memory) and proc (worker
//! processes over Unix-domain sockets) — by running traced PCG + Jacobi
//! calibration solves over a grid/rank sweep, fits the α-β-γ constants
//! from the span distributions (`spcg_perf::calib`), and replays the
//! paper's 128-node × 128-rank Figure-1 strong-scaling sweep on the
//! *fitted* machine for PCG and sPCG(s=10).
//!
//! The proc backend is **required**: a missing `spcg-rankd` worker binary
//! fails the run (exit 1) instead of silently calibrating the thread
//! transport twice. Build the workspace first (or set `SPCG_RANKD`).
//!
//! Calibration solves disable overlap so `ExchangeWait` spans measure the
//! transport, not the overlapped compute scheduled around it, and disable
//! fault injection so stall faults cannot contaminate the fit.
//!
//! Run: `cargo run --release -p spcg-bench --bin scalecheck`
//! (`SPCG_QUICK=1` shrinks the sweep for CI smoke runs.)

use spcg_bench::{prepare_instance, quick_mode, write_results, Instance, Precond};
use spcg_dist::Backend;
use spcg_obs::Tracer;
use spcg_perf::scaling::{poisson3d_halo_per_rank, strong_scaling};
use spcg_perf::{Calibration, Calibrator};
use spcg_solvers::{solve, Engine, Method, SolveOptions, SolveResult};
use spcg_sparse::generators::poisson::poisson_3d;
use spcg_sparse::SparseFormat;

const NODES: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
const RANKS_PER_NODE: usize = 128;
const RANKS: [usize; 2] = [2, 4];

fn calibration_solve(
    inst: &Instance,
    method: &Method,
    backend: Backend,
    format: SparseFormat,
    ranks: usize,
) -> (SolveResult, Tracer) {
    let tracer = Tracer::new();
    let opts = SolveOptions::builder()
        .tol(1e-6)
        .threads(1)
        .overlap(false)
        .format(format)
        .trace(Some(tracer.clone()))
        .build()
        .with_backend(backend)
        .with_faults(None);
    let res = solve(method, &inst.problem(), &opts, Engine::Ranked { ranks });
    (res, tracer)
}

/// Calibrates one `(backend, format)` pair over the grid sweep: the α-β
/// transport fit is format-independent in principle, but γ is the rate of
/// the format's own SpMV kernel, so each format gets its own fit.
fn calibrate(
    grids: &[usize],
    backend: Backend,
    format: SparseFormat,
) -> (Calibration, Vec<Instance>) {
    let mut cal = Calibrator::new();
    let mut instances = Vec::new();
    for &grid in grids {
        let inst = prepare_instance(
            &format!("poisson3d_{grid}"),
            poisson_3d(grid),
            Precond::Jacobi,
        );
        for ranks in RANKS {
            let (res, tracer) = calibration_solve(&inst, &Method::Pcg, backend, format, ranks);
            assert!(
                res.converged(),
                "calibration solve diverged: {} {} {} ranks={ranks}",
                backend.as_str(),
                format.name(),
                inst.name,
            );
            cal.ingest(&tracer, &res.counters);
            eprintln!(
                "[scalecheck] {} {} {} ranks={ranks}: {} iters, {} exchanges",
                backend.as_str(),
                format.name(),
                inst.name,
                res.iterations,
                res.counters.halo_exchanges,
            );
        }
        instances.push(inst);
    }
    (cal.fit_format(backend.as_str(), format.name()), instances)
}

fn json_array_sci(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.3e}")).collect();
    format!("[{}]", cells.join(", "))
}

fn json_array(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    format!("[{}]", cells.join(", "))
}

/// One fitted-constants JSON object (the `calibration`/`calibration_sell`
/// blocks).
fn calibration_json(cal: &Calibration) -> String {
    format!(
        "{{\n        \"format\": \"{}\",\n        \"alpha_seconds\": {:.3e},\n        \"beta_seconds_per_word\": {:.3e},\n        \"gamma_flops\": {:.3e},\n        \"samples\": {}\n      }}",
        cal.format, cal.alpha, cal.beta, cal.gamma, cal.samples,
    )
}

/// One backend's JSON block: fitted constants for both sparse formats plus
/// the replayed curves — Figure 1 priced with the CSR rate and again with
/// the measured SELL rate.
fn backend_block(
    cal: &Calibration,
    cal_sell: &Calibration,
    replay_inst: &Instance,
    grid: usize,
    backend: Backend,
) -> String {
    let machine = cal.machine_params();
    let machine_sell = cal_sell.machine_params();
    // Counter blocks for the replay: the calibrated transport prices a
    // fresh PCG and sPCG(s=10) solve of the largest calibration problem.
    // Operation counts are format-independent (the formats are bitwise
    // identical), so one counter block serves both machine fits.
    let (pcg, _) = calibration_solve(
        replay_inst,
        &Method::Pcg,
        backend,
        SparseFormat::Csr,
        RANKS[0],
    );
    let spcg = {
        let method = Method::SPcg {
            s: 10,
            basis: replay_inst.chebyshev.clone(),
        };
        let (res, _) =
            calibration_solve(replay_inst, &method, backend, SparseFormat::Csr, RANKS[0]);
        res
    };
    assert!(pcg.converged() && spcg.converged(), "replay solve diverged");
    let halo = |ranks: usize| poisson3d_halo_per_rank(grid, ranks);
    let pcg_pts = strong_scaling(&pcg.counters, &machine, &NODES, RANKS_PER_NODE, halo);
    let spcg_pts = strong_scaling(&spcg.counters, &machine, &NODES, RANKS_PER_NODE, halo);
    let spcg_sell_pts = strong_scaling(&spcg.counters, &machine_sell, &NODES, RANKS_PER_NODE, halo);
    let pcg_t: Vec<f64> = pcg_pts.iter().map(|p| p.time.total()).collect();
    let spcg_t: Vec<f64> = spcg_pts.iter().map(|p| p.time.total()).collect();
    let spcg_sell_t: Vec<f64> = spcg_sell_pts.iter().map(|p| p.time.total()).collect();
    let pcg_1n = pcg_t[0];
    let speedup = |ts: &[f64]| -> Vec<f64> { ts.iter().map(|t| pcg_1n / t).collect() };
    format!(
        "    \"{}\": {{\n      \"calibration\": {},\n      \"calibration_sell\": {},\n      \"modeled_seconds\": {{\n        \"pcg\": {},\n        \"spcg_s10\": {},\n        \"spcg_s10_sell\": {}\n      }},\n      \"speedup_over_pcg_1node\": {{\n        \"pcg\": {},\n        \"spcg_s10\": {},\n        \"spcg_s10_sell\": {}\n      }}\n    }}",
        cal.backend,
        calibration_json(cal),
        calibration_json(cal_sell),
        json_array_sci(&pcg_t),
        json_array_sci(&spcg_t),
        json_array_sci(&spcg_sell_t),
        json_array(&speedup(&pcg_t)),
        json_array(&speedup(&spcg_t)),
        json_array(&speedup(&spcg_sell_t)),
    )
}

fn main() {
    #[cfg(unix)]
    if spcg_solvers::procexec::rankd_path().is_none() {
        eprintln!(
            "scalecheck: spcg-rankd not found — build the workspace first \
             (cargo build --release) or set SPCG_RANKD"
        );
        std::process::exit(1);
    }
    #[cfg(not(unix))]
    {
        eprintln!("scalecheck: the proc backend requires a Unix platform");
        std::process::exit(1);
    }
    let grids: &[usize] = if quick_mode() {
        &[16, 20]
    } else {
        &[24, 32, 40]
    };
    let mut blocks = Vec::new();
    for backend in [Backend::Thread, Backend::Proc] {
        eprintln!("[scalecheck] calibrating {} backend", backend.as_str());
        let (cal, instances) = calibrate(grids, backend, SparseFormat::Csr);
        let (cal_sell, _) = calibrate(grids, backend, SparseFormat::Sell);
        for c in [&cal, &cal_sell] {
            eprintln!(
                "[scalecheck] {} {}: alpha={:.3e}s beta={:.3e}s/word gamma={:.3e}flop/s ({} samples)",
                c.backend, c.format, c.alpha, c.beta, c.gamma, c.samples
            );
        }
        let replay_inst = instances.last().unwrap();
        blocks.push(backend_block(
            &cal,
            &cal_sell,
            replay_inst,
            *grids.last().unwrap(),
            backend,
        ));
    }
    let grids_list: Vec<String> = grids.iter().map(|g| g.to_string()).collect();
    let nodes_list: Vec<String> = NODES.iter().map(|n| n.to_string()).collect();
    let ranks_list: Vec<String> = RANKS.iter().map(|r| r.to_string()).collect();
    let out = format!(
        "{{\n  \"calibration_grids\": [{}],\n  \"calibration_ranks\": [{}],\n  \"nodes\": [{}],\n  \"ranks_per_node\": {RANKS_PER_NODE},\n  \"backends\": {{\n{}\n  }}\n}}\n",
        grids_list.join(", "),
        ranks_list.join(", "),
        nodes_list.join(", "),
        blocks.join(",\n"),
    );
    write_results("BENCH_scale.json", &out);
}
