//! Acceptance sweep for the enlarged-Krylov family. Emits
//! `BENCH_enlarged.json` with two sections:
//!
//! **Survival** — on the uniform-spectrum SPD problem (n = 600, κ = 1e6,
//! the breakdown matrix the spcg unit tests pin) it runs the monomial
//! basis at s ∈ {4, 6, 8, 10, 12, 16} through both Gram-solve paths: the
//! Cholesky-factored s-step solver (`Method::SPcg`) and the Gauss-Seidel
//! path (`Method::CaPcgGs`). The interesting regime is s ≥ 8, where the
//! moment matrices are numerically singular: the Cholesky path stalls or
//! diverges while the GS path — minimal-residual inner solves plus
//! stall-triggered recurrence restarts — still reaches the tolerance at
//! s = 10 and s = 12 (at s = 16 the monomial basis is too far gone for
//! either path; no silent cap, the sweep records the failure).
//!
//! **EkCG** — on the anisotropic acceptance problem (2D diffusion
//! `-(0.1·u_xx + u_yy)` on a 48×48 grid, seeded random rhs, Jacobi,
//! tol 1e-12) it runs `Method::EkCg` at t ∈ {2, 4, 8} against the PCG
//! baseline. Measured ratios on this problem: t = 2 → 0.79×, t = 4 →
//! 0.62×, t = 8 → 0.48× PCG iterations. Iteration counts are bitwise
//! deterministic, so the gate margins are thin by design.
//!
//! Run: `cargo run --release -p spcg-bench --bin enlarged`
//! (`SPCG_QUICK=1` restricts the survival sweep to s ∈ {8, 10}; the EkCG
//! sweep always runs in full — it is the acceptance point benchcheck
//! gates on.)
//!
//! `benchcheck` gates the emitted file (see `check_enlarged_gate`): the
//! GS path must converge at ≥ 1 s where the Cholesky path fails, and the
//! EkCG ratios must hold t = 4 ≤ 0.65× and t = 8 ≤ 0.6× PCG.

use spcg_basis::BasisType;
use spcg_bench::{quick_mode, write_results};
use spcg_precond::Jacobi;
use spcg_solvers::{capcg_gs, ekcg, pcg, spcg, Problem, SolveOptions};
use spcg_sparse::generators::anisotropic::anisotropic_2d;
use spcg_sparse::generators::paper_rhs;
use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
use spcg_sparse::rng::Rng64;

const SURVIVAL_N: usize = 600;
const SURVIVAL_KAPPA: f64 = 1e6;
const SURVIVAL_TOL: f64 = 1e-6;
const SURVIVAL_MAX_ITERS: usize = 4000;

const EKCG_M: usize = 48;
const EKCG_EPS: f64 = 0.1;
const EKCG_TOL: f64 = 1e-12;

fn fmt(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    // --- Survival sweep: Cholesky vs Gauss-Seidel Gram solves. ---
    let s_values: &[usize] = if quick_mode() {
        &[8, 10]
    } else {
        &[4, 6, 8, 10, 12, 16]
    };
    let a = spd_with_spectrum(
        SURVIVAL_N,
        &SpectrumShape::Uniform {
            kappa: SURVIVAL_KAPPA,
        },
        1.0,
        3,
        5,
    );
    let m = Jacobi::new(&a);
    let b = paper_rhs(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default()
        .with_tol(SURVIVAL_TOL)
        .with_max_iters(SURVIVAL_MAX_ITERS);

    let mut chol_iters = Vec::new();
    let mut chol_conv = Vec::new();
    let mut gs_iters = Vec::new();
    let mut gs_conv = Vec::new();
    let mut gs_restarts = Vec::new();
    for &s in s_values {
        let rc = spcg(&problem, s, &BasisType::Monomial, &opts);
        let rg = capcg_gs(&problem, s, &BasisType::Monomial, &opts);
        eprintln!(
            "[enlarged] survival s={s}: cholesky {:?} in {} | gauss_seidel {:?} in {} ({} restarts)",
            rc.outcome, rc.iterations, rg.outcome, rg.iterations, rg.restarts
        );
        chol_iters.push(rc.iterations as f64);
        chol_conv.push(if rc.converged() { 1.0 } else { 0.0 });
        gs_iters.push(rg.iterations as f64);
        gs_conv.push(if rg.converged() { 1.0 } else { 0.0 });
        gs_restarts.push(rg.restarts as f64);
    }

    // --- EkCG acceptance sweep (always full: benchcheck gates it). ---
    let t_values: &[usize] = &[2, 4, 8];
    let a = anisotropic_2d(EKCG_M, EKCG_EPS);
    let n = a.nrows();
    let m = Jacobi::new(&a);
    let mut rng = Rng64::seed_from_u64(17);
    let b: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default()
        .with_tol(EKCG_TOL)
        .with_max_iters(20_000);
    let r_pcg = pcg(&problem, &opts);
    assert!(
        r_pcg.converged(),
        "[enlarged] PCG baseline failed: {:?}",
        r_pcg.outcome
    );
    eprintln!("[enlarged] ekcg baseline: pcg in {}", r_pcg.iterations);
    let mut ek_iters = Vec::new();
    let mut ek_conv = Vec::new();
    let mut ek_ratios = Vec::new();
    for &t in t_values {
        let r = ekcg(&problem, t, &opts);
        let ratio = r.iterations as f64 / r_pcg.iterations as f64;
        eprintln!(
            "[enlarged] ekcg t={t}: {:?} in {} ({ratio:.3}x pcg)",
            r.outcome, r.iterations
        );
        ek_iters.push(r.iterations as f64);
        ek_conv.push(if r.converged() { 1.0 } else { 0.0 });
        ek_ratios.push(ratio);
    }

    let s_floats: Vec<f64> = s_values.iter().map(|&s| s as f64).collect();
    let t_floats: Vec<f64> = t_values.iter().map(|&t| t as f64).collect();
    let json = format!(
        "{{\n  \"survival\": {{\n    \"n\": {SURVIVAL_N},\n    \"kappa\": {SURVIVAL_KAPPA:e},\n    \
         \"tol\": {SURVIVAL_TOL:e},\n    \"max_iters\": {SURVIVAL_MAX_ITERS},\n    \
         \"s\": {},\n    \
         \"iters\": {{\n      \"cholesky\": {},\n      \"gauss_seidel\": {}\n    }},\n    \
         \"converged\": {{\n      \"cholesky\": {},\n      \"gauss_seidel\": {}\n    }},\n    \
         \"gs_restarts\": {}\n  }},\n  \
         \"ekcg\": {{\n    \"m\": {EKCG_M},\n    \"eps\": {EKCG_EPS},\n    \"tol\": {EKCG_TOL:e},\n    \
         \"pcg_iters\": {},\n    \
         \"t\": {},\n    \
         \"iters\": {},\n    \
         \"converged\": {},\n    \
         \"ratio_vs_pcg\": {}\n  }}\n}}\n",
        fmt(&s_floats),
        fmt(&chol_iters),
        fmt(&gs_iters),
        fmt(&chol_conv),
        fmt(&gs_conv),
        fmt(&gs_restarts),
        r_pcg.iterations,
        fmt(&t_floats),
        fmt(&ek_iters),
        fmt(&ek_conv),
        fmt(&ek_ratios),
    );
    write_results("BENCH_enlarged.json", &json);
}
