//! Calibration sweep: PCG iterations vs condition number for the Table-2
//! pipeline (uniform spectrum, degree-3 Chebyshev preconditioner, warm-up
//! spectral bounds). Used to fit `suite::kappa_for_iters`.
use spcg_bench::{paper, prepare_instance, Precond};
use spcg_solvers::{solve, Engine, Method, SolveOptions, StoppingCriterion};
use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};

fn main() {
    let precond = if std::env::args().any(|a| a == "--jacobi") {
        Precond::Jacobi
    } else {
        Precond::Chebyshev
    };
    let shapes: Vec<(String, SpectrumShape)> = [1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8]
        .into_iter()
        .map(|kappa| {
            (
                format!("loguni(k={kappa:.0e})"),
                SpectrumShape::LogUniform { kappa, jitter: 0.1 },
            )
        })
        .collect();
    for (name, shape) in shapes {
        let a = spd_with_spectrum(8000, &shape, 1.0, 3, 42);
        let inst = prepare_instance("cal", a, precond);
        let opts = SolveOptions {
            tol: paper::TOL,
            max_iters: paper::MAX_ITERS,
            criterion: StoppingCriterion::TrueResidual2Norm,
            ..Default::default()
        };
        let r = solve(&Method::Pcg, &inst.problem(), &opts, Engine::Serial);
        println!("{name} iters={} outcome={:?}", r.iterations, r.outcome);
    }
}
