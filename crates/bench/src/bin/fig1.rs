//! Regenerates the paper's **Figure 1**: strong-scaling speedup over
//! standard PCG on one node for a 7-point 3D Poisson matrix, Jacobi
//! preconditioner, Chebyshev basis, s ∈ {5, 10, 15}, 1–128 nodes × 128
//! ranks, M-norm criterion (reduction by 1e9).
//!
//! The solves run numerically (real f64 convergence, real iteration
//! counts); the cluster times come from the α-β model applied to the
//! instrumented counters at each node count. The default grid is 128³ so
//! the run finishes in minutes; set `SPCG_GRID=256` for the paper's 256³.
//!
//! Run: `cargo run --release -p spcg-bench --bin fig1`
//!
//! With `--ranks R` the solves execute on the real rank-parallel engine
//! (`Engine::Ranked`): R communicating ranks over `ThreadComm`, block-row
//! partitions, and depth-s ghost-zone exchange. The output then carries the
//! *measured* per-rank communication — collectives and halo exchanges —
//! demonstrating one halo exchange per s-block, and is written to
//! `fig1_ranks<R>.txt`.
//!
//! With `--trace <path>` (or `SPCG_TRACE=1`) every solve records per-rank
//! phase spans and the combined Chrome trace-event export — loadable in
//! Perfetto — is written to `path` (default `results/TRACE_fig1*.json`).
//! `SPCG_TRACE_CAP` bounds the events kept per rank track.

use spcg_bench::{
    adaptive_arg, no_overlap_arg, paper, prepare_instance, ranks_arg, results_dir, threads_arg,
    trace_arg, tracer_from_args, write_results, write_trace, Precond, TextTable,
};
use spcg_obs::Tracer;
use spcg_perf::scaling::{poisson3d_halo_per_rank, strong_scaling};
use spcg_perf::MachineParams;
use spcg_solvers::{solve, Engine, Method, SolveOptions, SolveResult, StoppingCriterion};
use spcg_sparse::generators::poisson::poisson_3d;

const NODES: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
const RANKS_PER_NODE: usize = 128;

fn run(
    method: &Method,
    inst: &spcg_bench::Instance,
    engine: Engine,
    threads: Option<usize>,
    overlap: bool,
    tracer: Option<&Tracer>,
) -> SolveResult {
    let mut builder = SolveOptions::builder()
        .tol(paper::TOL)
        .max_iters(100_000)
        .criterion(StoppingCriterion::PrecondMNorm)
        .overlap(overlap)
        .trace(tracer.cloned());
    if let Some(t) = threads {
        builder = builder.threads(t);
    }
    solve(method, &inst.problem(), &builder.build(), engine)
}

fn main() {
    let ranks = ranks_arg();
    let adaptive = adaptive_arg();
    let threads = threads_arg();
    let overlap = !no_overlap_arg();
    let trace_path = trace_arg();
    let tracer = tracer_from_args(&trace_path);
    let engine = match ranks {
        Some(r) => Engine::Ranked { ranks: r },
        None => Engine::Serial,
    };
    // Ranked mode runs R real solver threads per solve: default to a grid
    // that keeps the demonstration run short.
    let default_grid = if ranks.is_some() { 32 } else { 128 };
    let grid: usize = spcg_solvers::env::parsed("SPCG_GRID").unwrap_or(default_grid);
    let machine = MachineParams::default();

    eprintln!(
        "[fig1] building 3D Poisson {grid}^3 ({} rows)",
        grid * grid * grid
    );
    let inst = prepare_instance(
        &format!("poisson3d_{grid}"),
        poisson_3d(grid),
        Precond::Jacobi,
    );
    let basis = inst.chebyshev.clone();

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 1 — strong scaling for 7-point 3D Poisson {grid}^3, Jacobi \
         preconditioner, Chebyshev basis, M-norm criterion (1e9 reduction).\n\
         Speedup over PCG on 1 node ({RANKS_PER_NODE} ranks/node); '-' = did not converge.\n\n"
    ));

    // Run each solver once; iterations are topology-independent.
    let mut curves: Vec<(String, usize, SolveResult)> = Vec::new();
    eprintln!("[fig1] PCG");
    curves.push((
        "PCG".into(),
        1,
        run(
            &Method::Pcg,
            &inst,
            engine,
            threads,
            overlap,
            tracer.as_ref(),
        ),
    ));
    for s in [5usize, 10, 15] {
        for (label, method) in [
            (
                format!("sPCG(s={s})"),
                Method::SPcg {
                    s,
                    basis: basis.clone(),
                },
            ),
            (
                format!("CA-PCG(s={s})"),
                Method::CaPcg {
                    s,
                    basis: basis.clone(),
                },
            ),
            (
                format!("CA-PCG3(s={s})"),
                Method::CaPcg3 {
                    s,
                    basis: basis.clone(),
                },
            ),
            (
                format!("CA-PCG-GS(s={s})"),
                Method::CaPcgGs {
                    s,
                    basis: basis.clone(),
                },
            ),
        ] {
            eprintln!("[fig1] {label}");
            curves.push((
                label.clone(),
                s,
                run(&method, &inst, engine, threads, overlap, tracer.as_ref()),
            ));
        }
        if adaptive {
            // Monomial start: the controller must earn its Chebyshev
            // interval from running Ritz values, so its scaling curve is
            // the no-spectral-knowledge counterpart of the fixed rows.
            let label = format!("AdaptCA-PCG(s0={s})");
            eprintln!("[fig1] {label}");
            curves.push((
                label,
                s,
                run(
                    &Method::AdaptiveCaPcg {
                        s,
                        basis: spcg_basis::BasisType::Monomial,
                    },
                    &inst,
                    engine,
                    threads,
                    overlap,
                    tracer.as_ref(),
                ),
            ));
        }
    }

    // Enlarged-Krylov rows: t block directions per iteration (s = 1 in the
    // blocks accounting — EkCG exchanges ghosts every iteration like PCG,
    // trading collective *count* for t× fewer iterations at t² the payload).
    // The long recurrence keeps its full direction-block history, 2·n·t
    // doubles per iteration, so at the paper-scale 128³ serial grid the
    // rows would need tens of GB; they run on grids up to 40³ and the skip
    // is reported, never silent.
    if grid <= 40 {
        for t in [2usize, 4, 8] {
            let label = format!("EkCG(t={t})");
            eprintln!("[fig1] {label}");
            curves.push((
                label,
                1,
                run(
                    &Method::EkCg { t },
                    &inst,
                    engine,
                    threads,
                    overlap,
                    tracer.as_ref(),
                ),
            ));
        }
    } else {
        eprintln!(
            "[fig1] skipping EkCG rows: grid {grid} > 40 (full direction history \
             needs ~{}GB per solve at t=8)",
            2 * grid * grid * grid * 8 * 8 * 300 / 1_000_000_000
        );
    }

    // Ranked mode: report the *measured* per-rank communication before the
    // modeled scaling — the point is one ghost-zone exchange per s-block.
    if let Some(r) = ranks {
        let schedule = if overlap {
            "overlapped (post / interior SpMV / complete / frontier SpMV)"
        } else {
            "blocking (--no-overlap)"
        };
        out.push_str(&format!(
            "Measured communication on the rank-parallel engine ({r} ranks):\n\
             one halo exchange per s-block (CA-PCG builds two bases per block),\n\
             one global collective per s steps. Exchange schedule: {schedule}.\n\n"
        ));
        let mut t = TextTable::new(&[
            "Solver",
            "iters",
            "s-blocks",
            "collectives/rank",
            "halo exchanges",
            "halo/iter",
        ]);
        for (label, s, res) in &curves {
            let c = &res.counters;
            let blocks = if *s == 1 {
                c.iterations
            } else {
                c.outer_iterations
            };
            t.row(vec![
                label.clone(),
                res.iterations.to_string(),
                blocks.to_string(),
                res.collectives_per_rank.unwrap_or(0).to_string(),
                c.halo_exchanges.to_string(),
                format!("{:.3}", c.halo_exchanges as f64 / res.iterations as f64),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }

    let halo = |ranks: usize| poisson3d_halo_per_rank(grid, ranks);
    let pcg_one_node = {
        let pts = strong_scaling(&curves[0].2.counters, &machine, &[1], RANKS_PER_NODE, halo);
        pts[0].time.total()
    };
    out.push_str(&format!(
        "PCG on 1 node: modeled {pcg_one_node:.3}s over {} iterations (paper: 9.341s)\n\n",
        curves[0].2.iterations
    ));

    let mut header: Vec<String> = vec!["Solver".into(), "iters".into()];
    header.extend(NODES.iter().map(|n| format!("{n}n")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);
    for (label, _, res) in &curves {
        let mut cells = vec![label.clone(), res.iterations.to_string()];
        if res.converged() {
            let pts = strong_scaling(&res.counters, &machine, &NODES, RANKS_PER_NODE, halo);
            for p in pts {
                cells.push(format!("{:.2}", pcg_one_node / p.time.total()));
            }
        } else {
            cells.extend((0..NODES.len()).map(|_| "-".to_string()));
        }
        t.row(cells);
    }
    out.push_str(&t.render());

    // Communication-fraction diagnostics at the scaling limit.
    out.push_str("\nModeled communication fraction at 128 nodes:\n");
    for (label, _, res) in &curves {
        if !res.converged() {
            continue;
        }
        let pts = strong_scaling(&res.counters, &machine, &[128], RANKS_PER_NODE, halo);
        out.push_str(&format!(
            "  {label:14} {:.0}%\n",
            100.0 * pts[0].time.comm_fraction()
        ));
    }
    out.push_str(
        "\nPaper reference (shape): PCG stops scaling beyond 32 nodes; all s-step\n\
         methods keep scaling to 128 nodes; sPCG best and CA-PCG worst; sPCG beats\n\
         PCG from 16 nodes, CA-PCG/CA-PCG3 only from 64-128 nodes.\n",
    );

    match (ranks, adaptive) {
        (Some(r), false) => write_results(&format!("fig1_ranks{r}.txt"), &out),
        (Some(r), true) => write_results(&format!("fig1_adaptive_ranks{r}.txt"), &out),
        (None, false) => write_results("fig1.txt", &out),
        (None, true) => write_results("fig1_adaptive.txt", &out),
    }

    if let Some(tracer) = &tracer {
        let mut merged = spcg_dist::Counters::new();
        for (_, _, res) in &curves {
            merged.merge(&res.counters);
        }
        let path = trace_path.unwrap_or_else(|| {
            let name = match ranks {
                Some(r) => format!("TRACE_fig1_ranks{r}.json"),
                None => "TRACE_fig1.json".to_string(),
            };
            results_dir().join(name)
        });
        write_trace(&path, tracer, &merged);
    }
}
