//! Basis-type ablation (extension beyond the paper): iterations of each
//! s-step method with monomial, Newton (Leja-ordered Ritz shifts) and
//! Chebyshev bases across s ∈ {2, 5, 10, 15}, on one moderately hard
//! system. The paper evaluates monomial and Chebyshev only; §2.3 names
//! Newton as the third standard option.
//!
//! Run: `cargo run --release -p spcg-bench --bin basis_ablation`

use spcg_basis::BasisType;
use spcg_bench::{prepare_instance, write_results, Precond, TextTable};
use spcg_solvers::{
    newton_basis, solve, Engine, Method, SolveOptions, SolveResult, StoppingCriterion,
};
use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};

fn cell(r: &SolveResult) -> String {
    if r.converged() {
        r.iterations.to_string()
    } else {
        "-".into()
    }
}

fn main() {
    let a = spd_with_spectrum(
        6000,
        &SpectrumShape::LogUniform {
            kappa: 1e5,
            jitter: 0.1,
        },
        1.0,
        4,
        17,
    );
    let inst = prepare_instance("loguni_1e5", a, Precond::Chebyshev);
    let opts = SolveOptions {
        tol: 1e-8,
        max_iters: 12_000,
        criterion: StoppingCriterion::TrueResidual2Norm,
        ..Default::default()
    };
    let pcg = solve(&Method::Pcg, &inst.problem(), &opts, Engine::Serial);
    let mut out = format!(
        "Basis ablation — log-uniform spectrum, kappa 1e5, n = 6000, Chebyshev \
         preconditioner (degree 3), tol 1e-8.\nPCG reference: {} iterations.\n\n",
        pcg.iterations
    );
    let mut t = TextTable::new(&["method", "s", "monomial", "newton", "chebyshev"]);
    for s in [2usize, 5, 10, 15] {
        let newton = newton_basis(&inst.problem(), 2 * s.max(10), s);
        let bases = [BasisType::Monomial, newton, inst.chebyshev.clone()];
        for (name, make) in [
            (
                "sPCG",
                &(|b: BasisType| Method::SPcg { s, basis: b }) as &dyn Fn(BasisType) -> Method,
            ),
            ("CA-PCG", &|b| Method::CaPcg { s, basis: b }),
            ("CA-PCG3", &|b| Method::CaPcg3 { s, basis: b }),
        ] {
            let cells: Vec<String> = bases
                .iter()
                .map(|b| {
                    cell(&solve(
                        &make(b.clone()),
                        &inst.problem(),
                        &opts,
                        Engine::Serial,
                    ))
                })
                .collect();
            t.row(vec![
                name.into(),
                s.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\n('-' = diverged, stagnated, broke down, or exceeded 12000 iterations)\n");
    write_results("basis_ablation.txt", &out);
}
