//! Regenerates the paper's **Table 1**: computational cost per s steps for
//! each algorithm — the closed-form formulas, plus a cross-check of the
//! formulas against the instrumented counters of actual solver runs.
//!
//! Run: `cargo run --release -p spcg-bench --bin table1`

use spcg_bench::{paper, write_results, TextTable};
use spcg_perf::table1::{verify_against_counters, Algorithm};
use spcg_solvers::{Engine, Method, Problem, SolveOptions, StoppingCriterion};
use spcg_sparse::generators::paper_rhs;
use spcg_sparse::generators::poisson::poisson_3d;

fn main() {
    let mut out = String::new();
    out.push_str("Table 1 — computational cost per s steps (FLOPs per matrix row)\n\n");

    for s in [5u64, 10, 15] {
        let mut t = TextTable::new(&[
            "Algorithm",
            "#MV+#prec",
            "Local red.",
            "Vec (mono)",
            "Extra (arb)",
            "Total mono",
            "Total arb",
        ]);
        for alg in Algorithm::ALL {
            t.row(vec![
                alg.name().into(),
                format!("{}", alg.mv_and_precond(s)),
                format!("{}", alg.local_reductions(s)),
                format!("{}", alg.vector_flops_monomial(s)),
                alg.vector_flops_extra_arbitrary(s)
                    .map_or("-".into(), |v| v.to_string()),
                format!("{}", alg.total_monomial(s)),
                alg.total_arbitrary(s).map_or("-".into(), |v| v.to_string()),
            ]);
        }
        out.push_str(&format!("s = {s}\n{}\n", t.render()));
    }

    // Cross-check the formulas against instrumented runs on a small 3D
    // Poisson problem with the Jacobi preconditioner and the free M-norm
    // criterion (so no criterion overhead is counted).
    out.push_str("Formula vs instrumented counters (3D Poisson 20^3, Jacobi, s = 10)\n");
    let a = poisson_3d(20);
    let n = a.nrows();
    let m = spcg_precond::Jacobi::new(&a);
    let b = paper_rhs(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg_solvers::chebyshev_basis(&problem, paper::WARMUP_ITERS, paper::MARGIN);
    let opts = SolveOptions::default()
        .with_criterion(StoppingCriterion::PrecondMNorm)
        .with_tol(1e-8);
    let s = paper::S;

    let mut t = TextTable::new(&[
        "Algorithm",
        "MV+prec (meas)",
        "MV+prec (form)",
        "dots (meas)",
        "dots (form)",
        "vecFLOPs/n (meas)",
        "vecFLOPs/n (form)",
        "max rel err",
    ]);
    let cases = [
        (Algorithm::Pcg, Method::Pcg, false),
        (Algorithm::SPcgMon, Method::SPcgMon { s }, false),
        (
            Algorithm::SPcg,
            Method::SPcg {
                s,
                basis: basis.clone(),
            },
            true,
        ),
        (
            Algorithm::CaPcg,
            Method::CaPcg {
                s,
                basis: basis.clone(),
            },
            true,
        ),
        (
            Algorithm::CaPcg3,
            Method::CaPcg3 {
                s,
                basis: basis.clone(),
            },
            true,
        ),
    ];
    for (alg, method, arb) in cases {
        let res = spcg_solvers::solve(&method, &problem, &opts, Engine::Serial);
        // Convergence is not required here (monomial s = 10 legitimately
        // stalls); per-outer-iteration counters are valid either way.
        assert!(
            res.counters.outer_iterations >= 2,
            "{} did too little work to calibrate: {:?}",
            method.name(),
            res.outcome
        );
        let check = verify_against_counters(alg, s as u64, n, arb, &res.counters);
        t.row(vec![
            alg.name().into(),
            format!("{:.1}", check.measured_mv_precond),
            format!("{:.0}", check.formula_mv_precond),
            format!("{:.1}", check.measured_reductions),
            format!("{:.0}", check.formula_reductions),
            format!("{:.1}", check.measured_vector_flops),
            format!("{:.0}", check.formula_vector_flops),
            format!("{:.2}", check.max_relative_error()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nNotes: measured values include the setup and the final convergence-check\n\
         round, so small deviations from the asymptotic formulas are expected;\n\
         sPCG_mon's vector FLOPs exclude the moment recurrence we replace (see\n\
         DESIGN.md).\n",
    );

    write_results("table1.txt", &out);
}
