//! Validates freshly emitted benchmark JSON against committed baselines.
//!
//! Usage: `benchcheck <fresh.json> <baseline.json> [<fresh> <baseline> ...]`
//!
//! For each pair the check fails when
//!
//! * the fresh file is missing or unparsable,
//! * a key present in the baseline is missing from the fresh output
//!   (schema drift — a renamed or dropped metric), or
//! * a numeric leaf under a `gflops` object differs from the baseline by
//!   more than [`MAX_RATIO`]× in either direction (a timing anomaly: a
//!   broken kernel, a misconfigured run, or a unit change).
//!
//! Only `gflops` subtrees get the ratio check — iteration counts, sizes,
//! and thread lists are schema-checked but machines legitimately differ in
//! absolute throughput, and quick-mode runs legitimately subsample sweeps,
//! so arrays are compared over their common prefix. Exit status is the
//! number of failing pairs (0 = all good), capped at process-exit range.
//!
//! Fitted calibration constants (the `calibration` blocks of
//! `BENCH_scale.json`) get a *range* check instead of a baseline ratio:
//! machines differ wildly in absolute transport cost, but an α outside
//! nanoseconds-to-centiseconds, a β outside the plausible inverse-bandwidth
//! band, or a γ outside 10 kFLOP/s–10 TFLOP/s means the fit ingested
//! garbage (empty traces, a unit mix-up, hard-coded constants).
//!
//! The SELL-C-σ format carries its own gate: a fresh `gflops` object that
//! reports a CSR `spmv` must also report `spmv_sell`, and the
//! single-thread SELL/CSR throughput ratio must reach [`SELL_MIN_RATIO`] —
//! the sliced format exists to beat CSR, and a ratio collapse means the
//! unrolled kernel regressed (or the build lost its SIMD path).
//!
//! Two more fresh-file-only gates (baselines must not grandfather their
//! absence):
//!
//! * a kernels sweep (a `gflops` object reporting `spmv`) must carry an
//!   `nproc` field and a `speedup_vs_1_thread` entry for **every** leg in
//!   `gflops` — without the core count, 1-core container numbers are
//!   uninterpretable, and a leg without its speedup hides scaling
//!   regressions;
//! * a service sweep (a file with `batch_widths`) must show
//!   `gflops.batched_pcg` monotone non-decreasing from k = 1 to k = 8
//!   (pairwise noise slack [`SERVICE_MONOTONE_SLACK`], strict end-to-end),
//!   a width-1 batched solve within [`MAX_RATIO`]× of the plain `solve()`
//!   baseline, and a cache-hit setup within [`SERVICE_MAX_HIT_RATIO`] of
//!   the cold-start solve. Batching exists to amortize the matrix stream;
//!   a falling curve means the blocked path regressed into overhead.

use spcg_obs::json::{parse, Value};
use std::process::ExitCode;

/// Allowed fresh/baseline throughput ratio (either direction). Generous on
/// purpose: CI runners are slow and noisy, but a >10× swing means the
/// benchmark is measuring something else entirely.
const MAX_RATIO: f64 = 10.0;

/// Plausibility ranges for fitted calibration constants, `(key, lo, hi)`
/// exclusive on both ends.
const CALIB_RANGES: [(&str, f64, f64); 3] = [
    ("alpha_seconds", 1e-9, 1e-1),
    ("beta_seconds_per_word", 1e-13, 1e-4),
    ("gamma_flops", 1e4, 1e13),
];

/// Minimum fresh single-thread `spmv_sell[0] / spmv[0]` ratio. The
/// measured ratio on the reference runner is ~1.9×; dipping under 1.5×
/// means the SELL kernel lost its bandwidth/ILP advantage.
const SELL_MIN_RATIO: f64 = 1.5;

/// Pairwise noise slack on the service GF/s curve: each step from one
/// batch width to the next may dip to this fraction of its predecessor
/// before the check fails. The end-to-end k=1 → k=8 comparison gets no
/// slack — the widest batch must not be slower than width 1.
const SERVICE_MONOTONE_SLACK: f64 = 0.9;

/// Maximum cache-hit setup cost as a fraction of the cold-start solve.
/// The committed baseline demonstrates well under 5%; the CI gate is
/// looser because quick-mode grids shrink the cold solve far more than
/// the (fixed-cost) fingerprint hash.
const SERVICE_MAX_HIT_RATIO: f64 = 0.5;

/// Maximum adaptive-from-monomial iteration count as a multiple of the
/// oracle fixed-Chebyshev count at the same κ. This is the paper-grade
/// acceptance margin for the adaptive controller: discovering the
/// spectrum mid-solve may cost at most 10% over perfect a-priori
/// spectral knowledge.
const ADAPTIVE_MAX_RATIO: f64 = 1.1;

/// Maximum EkCG iteration count as a fraction of the PCG baseline on the
/// anisotropic acceptance problem, per block count t. Iteration counts in
/// this workspace are bitwise deterministic, so the margins sit just above
/// the measured ratios (t = 4 → 0.62×, t = 8 → 0.48×): any algorithmic
/// regression that costs even a handful of iterations trips the gate.
const EKCG_MAX_RATIO: [(f64, f64); 2] = [(4.0, 0.65), (8.0, 0.6)];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() % 2 != 0 {
        eprintln!("usage: benchcheck <fresh.json> <baseline.json> [...more pairs]");
        return ExitCode::from(2);
    }
    let mut failures = 0u8;
    for pair in args.chunks(2) {
        let (fresh_path, base_path) = (&pair[0], &pair[1]);
        let mut errors = Vec::new();
        match (load(fresh_path), load(base_path)) {
            (Ok(fresh), Ok(base)) => {
                compare(&base, &fresh, "$", false, &mut errors);
                check_sell_gate(&fresh, &mut errors);
                check_kernels_gate(&fresh, &mut errors);
                check_service_gate(&fresh, &mut errors);
                check_adaptive_gate(&fresh, &mut errors);
                check_enlarged_gate(&fresh, &mut errors);
            }
            (fresh, base) => {
                if let Err(e) = fresh {
                    errors.push(format!("{fresh_path}: {e}"));
                }
                if let Err(e) = base {
                    errors.push(format!("{base_path}: {e}"));
                }
            }
        }
        if errors.is_empty() {
            eprintln!("benchcheck: OK   {fresh_path} vs {base_path}");
        } else {
            eprintln!("benchcheck: FAIL {fresh_path} vs {base_path}");
            for e in &errors {
                eprintln!("  - {e}");
            }
            failures = failures.saturating_add(1);
        }
    }
    ExitCode::from(failures)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    parse(&text).map_err(|e| format!("invalid JSON: {e}"))
}

/// Walks the baseline, requiring each key in the fresh value and ratio-
/// checking numeric leaves once inside a `gflops` subtree.
fn compare(base: &Value, fresh: &Value, path: &str, in_gflops: bool, errors: &mut Vec<String>) {
    match (base, fresh) {
        (Value::Object(fields), _) => {
            for (key, bv) in fields {
                match fresh.get(key) {
                    Some(fv) => {
                        let sub = format!("{path}.{key}");
                        if let Some(&(_, lo, hi)) =
                            CALIB_RANGES.iter().find(|(name, _, _)| name == key)
                        {
                            check_range(fv, &sub, lo, hi, errors);
                        }
                        compare(bv, fv, &sub, in_gflops || key == "gflops", errors);
                    }
                    None => errors.push(format!("{path}.{key}: missing from fresh output")),
                }
            }
        }
        (Value::Array(bitems), Value::Array(fitems)) => {
            // Quick-mode sweeps subsample: compare the common prefix, but an
            // empty fresh array for a non-empty baseline is schema drift.
            if fitems.is_empty() && !bitems.is_empty() {
                errors.push(format!("{path}: fresh array is empty"));
            }
            for (i, (bv, fv)) in bitems.iter().zip(fitems).enumerate() {
                compare(bv, fv, &format!("{path}[{i}]"), in_gflops, errors);
            }
        }
        (Value::Array(_), other) => {
            errors.push(format!("{path}: expected array, found {}", kind(other)));
        }
        (Value::Number(b), Value::Number(f)) if in_gflops => {
            if !f.is_finite() || *f <= 0.0 {
                errors.push(format!("{path}: non-positive throughput {f}"));
            } else if *b > 0.0 && (f / b > MAX_RATIO || b / f > MAX_RATIO) {
                errors.push(format!(
                    "{path}: throughput {f} vs baseline {b} exceeds {MAX_RATIO}x"
                ));
            }
        }
        (Value::Number(_), Value::Number(_)) => {}
        (Value::Number(_), other) => {
            errors.push(format!("{path}: expected number, found {}", kind(other)));
        }
        // Strings/booleans/null: presence is all the baseline demands.
        _ => {}
    }
}

/// The SELL format gate on a fresh result file: wherever a `gflops`
/// object reports a CSR `spmv`, it must also report `spmv_sell`, and the
/// single-thread (first-entry) ratio must reach [`SELL_MIN_RATIO`]. This
/// is a check on the fresh file alone — a baseline predating the SELL
/// format must not grandfather its absence.
fn check_sell_gate(fresh: &Value, errors: &mut Vec<String>) {
    let Some(gflops) = fresh.get("gflops") else {
        return;
    };
    let first = |key: &str| -> Option<f64> {
        match gflops.get(key) {
            Some(Value::Array(items)) => match items.first() {
                Some(Value::Number(v)) => Some(*v),
                _ => None,
            },
            _ => None,
        }
    };
    let Some(csr) = first("spmv") else {
        return;
    };
    let Some(sell) = first("spmv_sell") else {
        errors.push("$.gflops.spmv_sell: missing SELL leg in fresh output".to_string());
        return;
    };
    if !(csr > 0.0) || !(sell / csr >= SELL_MIN_RATIO) {
        errors.push(format!(
            "$.gflops.spmv_sell[0]: SELL/CSR single-thread ratio {sell}/{csr} below {SELL_MIN_RATIO}x"
        ));
    }
}

/// The kernels-sweep gate on a fresh result file: a `gflops` object that
/// reports the `spmv` leg marks a kernel sweep, which must then carry a
/// top-level `nproc` field and one `speedup_vs_1_thread` array per
/// `gflops` leg. Fresh-file-only, like the SELL gate — older baselines
/// must not grandfather the missing fields.
fn check_kernels_gate(fresh: &Value, errors: &mut Vec<String>) {
    let Some(gflops) = fresh.get("gflops") else {
        return;
    };
    let Value::Object(legs) = gflops else {
        return;
    };
    if gflops.get("spmv").is_none() {
        return;
    }
    if !matches!(fresh.get("nproc"), Some(Value::Number(_))) {
        errors.push("$.nproc: missing core count in fresh kernels output".to_string());
    }
    let speedups = fresh.get("speedup_vs_1_thread");
    for (key, _) in legs {
        match speedups.and_then(|s| s.get(key)) {
            Some(Value::Array(_)) => {}
            _ => errors.push(format!(
                "$.speedup_vs_1_thread.{key}: gflops leg without a speedup array"
            )),
        }
    }
}

/// The service-sweep gate on a fresh result file (marked by a
/// `batch_widths` array): the batched GF/s curve must be monotone
/// non-decreasing from k = 1 to k = 8 (batching amortizes the matrix
/// stream — a falling curve means the blocked path turned into pure
/// overhead), the width-1 batch must stay within [`MAX_RATIO`]× of the
/// plain `solve()` baseline, and a cache hit must cost at most
/// [`SERVICE_MAX_HIT_RATIO`] of the cold-start solve.
fn check_service_gate(fresh: &Value, errors: &mut Vec<String>) {
    let Some(widths) = num_array(fresh.get("batch_widths")) else {
        return;
    };
    match num_array(fresh.get("gflops").and_then(|g| g.get("batched_pcg"))) {
        Some(curve) if curve.len() == widths.len() && !curve.is_empty() => {
            // Only widths up to 8 are gated: the paper-level claim is
            // k=1 → k=8, and the widest batches can plateau.
            let gated: Vec<(f64, f64)> = widths
                .iter()
                .copied()
                .zip(curve.iter().copied())
                .filter(|&(w, _)| w <= 8.0)
                .collect();
            for pair in gated.windows(2) {
                let ((wa, a), (wb, b)) = (pair[0], pair[1]);
                if !(b >= a * SERVICE_MONOTONE_SLACK) {
                    errors.push(format!(
                        "$.gflops.batched_pcg: {b} GF/s at k={wb} under {a} GF/s at k={wa} \
                         (slack {SERVICE_MONOTONE_SLACK})"
                    ));
                }
            }
            if let (Some(&(_, first)), Some(&(w, last))) = (gated.first(), gated.last()) {
                if !(last >= first) {
                    errors.push(format!(
                        "$.gflops.batched_pcg: k={w} throughput {last} below k=1 {first}"
                    ));
                }
            }
        }
        _ => errors.push(
            "$.gflops.batched_pcg: missing or mismatched batched curve in fresh output".to_string(),
        ),
    }
    match (
        number(fresh.get("batch_k1_seconds")),
        number(fresh.get("plain_solve_seconds")),
    ) {
        (Some(k1), Some(plain)) if plain > 0.0 => {
            if !(k1 / plain <= MAX_RATIO) {
                errors.push(format!(
                    "$.batch_k1_seconds: width-1 batch {k1}s vs plain solve {plain}s exceeds \
                     {MAX_RATIO}x"
                ));
            }
        }
        _ => errors.push(
            "$.batch_k1_seconds/plain_solve_seconds: missing width-1 overhead pair".to_string(),
        ),
    }
    match number(
        fresh
            .get("setup")
            .and_then(|s| s.get("hit_over_cold_solve")),
    ) {
        Some(r) if r.is_finite() && r <= SERVICE_MAX_HIT_RATIO => {}
        Some(r) => errors.push(format!(
            "$.setup.hit_over_cold_solve: cache-hit setup ratio {r} exceeds {SERVICE_MAX_HIT_RATIO}"
        )),
        None => errors.push("$.setup.hit_over_cold_solve: missing setup ratio".to_string()),
    }
}

/// The adaptive-controller gate on a fresh result file (marked by an
/// `adaptive_kappas` array): the adaptive method must converge at every
/// κ, at least one κ must show the fixed monomial basis *failing* while
/// adaptive succeeds (otherwise the sweep is too easy to demonstrate
/// anything), wherever the oracle fixed-Chebyshev run converges the
/// adaptive iteration count must stay within [`ADAPTIVE_MAX_RATIO`]× of
/// it, and every κ must record at least one mid-solve basis rebuild —
/// an adaptive run that never retunes is indistinguishable from the
/// fixed method it claims to improve on. Fresh-file-only, like the
/// other marker-keyed gates.
fn check_adaptive_gate(fresh: &Value, errors: &mut Vec<String>) {
    let Some(kappas) = num_array(fresh.get("adaptive_kappas")) else {
        return;
    };
    let leg = |group: &str, key: &str| -> Option<Vec<f64>> {
        num_array(fresh.get(group).and_then(|g| g.get(key))).filter(|v| v.len() == kappas.len())
    };
    let (Some(it_mono), Some(it_cheb), Some(it_adapt)) = (
        leg("iters", "monomial_fixed"),
        leg("iters", "chebyshev_fixed"),
        leg("iters", "adaptive"),
    ) else {
        errors.push("$.iters: missing or mismatched adaptive sweep legs".to_string());
        return;
    };
    let (Some(cv_mono), Some(cv_cheb), Some(cv_adapt)) = (
        leg("converged", "monomial_fixed"),
        leg("converged", "chebyshev_fixed"),
        leg("converged", "adaptive"),
    ) else {
        errors.push("$.converged: missing or mismatched adaptive sweep legs".to_string());
        return;
    };
    let mut monomial_beaten = false;
    for (i, &kappa) in kappas.iter().enumerate() {
        if cv_adapt[i] != 1.0 {
            errors.push(format!(
                "$.converged.adaptive[{i}]: adaptive failed at kappa {kappa} \
                 ({} iters)",
                it_adapt[i]
            ));
        }
        if cv_mono[i] == 0.0 && cv_adapt[i] == 1.0 {
            monomial_beaten = true;
        }
        if cv_cheb[i] == 1.0 && it_cheb[i] > 0.0 {
            let ratio = it_adapt[i] / it_cheb[i];
            if !(ratio <= ADAPTIVE_MAX_RATIO) {
                errors.push(format!(
                    "$.iters.adaptive[{i}]: {} vs oracle chebyshev {} at kappa {kappa} \
                     exceeds {ADAPTIVE_MAX_RATIO}x",
                    it_adapt[i], it_cheb[i]
                ));
            }
        }
    }
    if !monomial_beaten {
        errors.push(format!(
            "$.converged.monomial_fixed: no kappa where the fixed monomial basis fails while \
             adaptive converges (monomial iters {it_mono:?}) — the sweep demonstrates nothing"
        ));
    }
    match num_array(fresh.get("shift_updates")) {
        Some(shifts) if shifts.len() == kappas.len() => {
            for (i, &count) in shifts.iter().enumerate() {
                if count < 1.0 {
                    errors.push(format!(
                        "$.shift_updates[{i}]: adaptive run recorded no basis rebuild at \
                         kappa {}",
                        kappas[i]
                    ));
                }
            }
        }
        _ => errors.push("$.shift_updates: missing or mismatched rebuild counts".to_string()),
    }
}

/// The enlarged-family gate on a fresh result file (marked by a
/// `survival` object): the Gauss-Seidel Gram path must converge at one or
/// more s values where the Cholesky path fails — otherwise the GS solver
/// demonstrates nothing the factored path doesn't already do — and the
/// EkCG sweep (marked by an `ekcg` object) must hold every
/// [`EKCG_MAX_RATIO`] point against its own PCG baseline, with every
/// swept t converging. Fresh-file-only, like the other marker-keyed
/// gates: an old baseline must not grandfather a regressed method.
fn check_enlarged_gate(fresh: &Value, errors: &mut Vec<String>) {
    if let Some(survival) = fresh.get("survival") {
        let s = num_array(survival.get("s"));
        let leg = |group: &str, key: &str| -> Option<Vec<f64>> {
            num_array(survival.get(group).and_then(|g| g.get(key)))
                .filter(|v| Some(v.len()) == s.as_ref().map(Vec::len))
        };
        match (
            leg("converged", "cholesky"),
            leg("converged", "gauss_seidel"),
        ) {
            (Some(cv_chol), Some(cv_gs)) => {
                let survived = cv_chol
                    .iter()
                    .zip(&cv_gs)
                    .any(|(&c, &g)| c == 0.0 && g == 1.0);
                if !survived {
                    errors.push(format!(
                        "$.survival.converged: no s where gauss_seidel converges while \
                         cholesky fails (cholesky {cv_chol:?}, gauss_seidel {cv_gs:?}) — \
                         the GS path demonstrates nothing"
                    ));
                }
            }
            _ => {
                errors.push("$.survival.converged: missing or mismatched survival legs".to_string())
            }
        }
    }
    if let Some(ekcg) = fresh.get("ekcg") {
        let (Some(ts), Some(ratios), Some(conv)) = (
            num_array(ekcg.get("t")),
            num_array(ekcg.get("ratio_vs_pcg")),
            num_array(ekcg.get("converged")),
        ) else {
            errors.push("$.ekcg: missing t/ratio_vs_pcg/converged arrays".to_string());
            return;
        };
        if ratios.len() != ts.len() || conv.len() != ts.len() {
            errors.push("$.ekcg: mismatched sweep array lengths".to_string());
            return;
        }
        for (i, &t) in ts.iter().enumerate() {
            if conv[i] != 1.0 {
                errors.push(format!("$.ekcg.converged[{i}]: EkCG failed at t={t}"));
            }
        }
        for &(t, max_ratio) in &EKCG_MAX_RATIO {
            match ts.iter().position(|&v| v == t) {
                Some(i) => {
                    if !(ratios[i] <= max_ratio) {
                        errors.push(format!(
                            "$.ekcg.ratio_vs_pcg[{i}]: {} at t={t} exceeds {max_ratio}x PCG",
                            ratios[i]
                        ));
                    }
                }
                None => errors.push(format!(
                    "$.ekcg.t: gated block count t={t} missing from sweep {ts:?}"
                )),
            }
        }
    }
}

fn number(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Number(n)) => Some(*n),
        _ => None,
    }
}

fn num_array(v: Option<&Value>) -> Option<Vec<f64>> {
    match v {
        Some(Value::Array(items)) => items
            .iter()
            .map(|it| match it {
                Value::Number(n) => Some(*n),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

/// Requires a fitted constant to be a finite number strictly inside
/// `(lo, hi)` — see [`CALIB_RANGES`].
fn check_range(fresh: &Value, path: &str, lo: f64, hi: f64, errors: &mut Vec<String>) {
    match fresh {
        Value::Number(f) if f.is_finite() && *f > lo && *f < hi => {}
        Value::Number(f) => errors.push(format!(
            "{path}: fitted constant {f} outside plausible range ({lo:e}, {hi:e})"
        )),
        other => errors.push(format!("{path}: expected number, found {}", kind(other))),
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}
