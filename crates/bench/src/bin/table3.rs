//! Regenerates the paper's **Table 3**: modeled runtimes of standard PCG
//! and speedups of the s-step methods on four nodes (512 ranks), for the
//! seven largest Table-2 matrices where at least two s-step methods
//! converged — once with the Chebyshev preconditioner (recursive 2-norm
//! criterion) and once with Jacobi (M-norm criterion), s = 10, Chebyshev
//! basis.
//!
//! Runtimes come from the α-β cluster model applied to the instrumented
//! operation counts (DESIGN.md §3); the paper's ordering claims — sPCG
//! fastest everywhere, CA-PCG never faster than PCG — are what the model
//! must reproduce.
//!
//! Run: `cargo run --release -p spcg-bench --bin table3`
//!
//! With `--ranks R` the solves execute on the real rank-parallel engine
//! (`Engine::Ranked { ranks: R }`) instead of the serial reference; the
//! counters the model prices are then the globally merged counts measured
//! across the R communicating ranks, and output goes to
//! `table3_ranks<R>.txt`.
//!
//! With `--trace <path>` (or `SPCG_TRACE=1`) every solve records per-rank
//! phase spans; the combined Chrome trace-event export is written to
//! `path` (default `results/TRACE_table3*.json`).

use spcg_bench::{
    no_overlap_arg, paper, prepare_instance, ranks_arg, results_dir, threads_arg, trace_arg,
    tracer_from_args, write_results, write_trace, Precond, TextTable,
};
use spcg_dist::{Counters, MachineTopology};
use spcg_obs::Tracer;
use spcg_perf::{predict_time, MachineParams};
use spcg_solvers::{solve, Engine, Method, SolveOptions, SolveResult, StoppingCriterion};
use spcg_sparse::generators::suite::suite_matrices;

const MATRICES: [&str; 7] = [
    "parabolic_fem",
    "apache2",
    "audikw_1",
    "ldoor",
    "ecology2",
    "Geo_1438",
    "G3_circuit",
];

fn run(
    method: &Method,
    inst: &spcg_bench::Instance,
    crit: StoppingCriterion,
    engine: Engine,
    threads: Option<usize>,
    overlap: bool,
    tracer: Option<&Tracer>,
) -> SolveResult {
    let mut builder = SolveOptions::builder()
        .tol(paper::TOL)
        .max_iters(paper::MAX_ITERS)
        .criterion(crit)
        .overlap(overlap)
        .trace(tracer.cloned());
    if let Some(t) = threads {
        builder = builder.threads(t);
    }
    solve(method, &inst.problem(), &builder.build(), engine)
}

/// Prices the stand-in's measured counters at the *original* SuiteSparse
/// matrix size: iteration counts come from the scaled-down solve, but all
/// size-proportional work is multiplied by `paper_n / n` so the
/// compute/communication balance matches the paper's problem sizes (the
/// model is linear in each count).
fn scale_to_paper_size(c: &Counters, factor: f64) -> Counters {
    let mut out = c.clone();
    let scale = |v: u64| (v as f64 * factor).round() as u64;
    out.spmv_flops = scale(c.spmv_flops);
    out.precond_flops = scale(c.precond_flops);
    out.blas1_flops = scale(c.blas1_flops);
    out.blas2_flops = scale(c.blas2_flops);
    out.blas3_flops = scale(c.blas3_flops);
    out.local_reduction_flops = scale(c.local_reduction_flops);
    out
}

fn speedup_cell(pcg_time: f64, res: &SolveResult, time: f64) -> String {
    if res.converged() {
        format!("{:.2}", pcg_time / time)
    } else {
        "-".into()
    }
}

fn main() {
    let s = paper::S;
    let ranks = ranks_arg();
    let threads = threads_arg();
    let overlap = !no_overlap_arg();
    let trace_path = trace_arg();
    let tracer = tracer_from_args(&trace_path);
    let mut traced_counters = Counters::new();
    let engine = match ranks {
        Some(r) => Engine::Ranked { ranks: r },
        None => Engine::Serial,
    };
    let machine = MachineParams::default();
    let topo = MachineTopology::paper(4); // 4 nodes × 128 ranks
    let suite = suite_matrices();

    let mut out = String::new();
    out.push_str(&format!(
        "Table 3 — modeled PCG runtime and s-step speedups on {} nodes x {} ranks\n\
         (alpha-beta model on instrumented counters; s = {s}, Chebyshev basis)\n\n",
        topo.nodes, topo.ranks_per_node
    ));

    for (precond, crit, label) in [
        (
            Precond::Chebyshev,
            StoppingCriterion::RecursiveResidual2Norm,
            "Chebyshev preconditioner (degree 3), recursive 2-norm criterion",
        ),
        (
            Precond::Jacobi,
            StoppingCriterion::PrecondMNorm,
            "Jacobi preconditioner, M-norm criterion",
        ),
    ] {
        out.push_str(&format!("{label}\n"));
        let mut t = TextTable::new(&["Matrix", "PCG time", "sPCG", "CA-PCG", "CA-PCG3"]);
        for name in MATRICES {
            let entry = suite
                .iter()
                .find(|e| e.name == name)
                .expect("matrix in suite");
            eprintln!("[table3] {name} ({label})");
            let inst = prepare_instance(name, entry.build(), precond);
            // Banded stand-ins: per-rank halo ≈ the band width each side.
            let halo = (4 * entry.rounds) as f64;
            let size_factor = entry.paper_n as f64 / entry.n as f64;
            let pcg = run(
                &Method::Pcg,
                &inst,
                crit,
                engine,
                threads,
                overlap,
                tracer.as_ref(),
            );
            traced_counters.merge(&pcg.counters);
            let pcg_time = predict_time(
                &scale_to_paper_size(&pcg.counters, size_factor),
                &machine,
                &topo,
                halo,
            )
            .total();
            let basis = inst.chebyshev.clone();
            let mut cells = vec![name.to_string(), format!("{:.3}s", pcg_time)];
            for method in [
                Method::SPcg {
                    s,
                    basis: basis.clone(),
                },
                Method::CaPcg {
                    s,
                    basis: basis.clone(),
                },
                Method::CaPcg3 {
                    s,
                    basis: basis.clone(),
                },
            ] {
                let res = run(
                    &method,
                    &inst,
                    crit,
                    engine,
                    threads,
                    overlap,
                    tracer.as_ref(),
                );
                traced_counters.merge(&res.counters);
                let time = predict_time(
                    &scale_to_paper_size(&res.counters, size_factor),
                    &machine,
                    &topo,
                    halo,
                )
                .total();
                cells.push(speedup_cell(pcg_time, &res, time));
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Paper reference (shape): sPCG has the best speedup wherever it converges\n\
         (1.05-1.63x); CA-PCG is below 1.0x everywhere; CA-PCG3 lands between.\n",
    );

    match ranks {
        Some(r) => write_results(&format!("table3_ranks{r}.txt"), &out),
        None => write_results("table3.txt", &out),
    }

    if let Some(tracer) = &tracer {
        let path = trace_path.unwrap_or_else(|| {
            let name = match ranks {
                Some(r) => format!("TRACE_table3_ranks{r}.json"),
                None => "TRACE_table3.json".to_string(),
            };
            results_dir().join(name)
        });
        write_trace(&path, tracer, &traced_counters);
    }
}
