//! Regenerates the paper's **Table 2**: convergence of PCG and the three
//! s-step methods on the 40-matrix suite, with the monomial and Chebyshev
//! bases, s = 10, Chebyshev preconditioner of degree 3, true-residual
//! tolerance 1e-9, 12 000-iteration cap.
//!
//! Matrices are the difficulty-matched synthetic stand-ins for the
//! SuiteSparse set (DESIGN.md §3). Each s-step cell shows
//! `monomial/chebyshev` iterations, `-` meaning diverged/stagnated/capped.
//!
//! Run: `cargo run --release -p spcg-bench --bin table2`
//! (`SPCG_QUICK=1` runs a 8-matrix subset).

use spcg_bench::{
    adaptive_arg, not_significant, paper, prepare_instance, quick_mode, table2_cell, write_results,
    Precond, TextTable,
};
use spcg_solvers::{solve, Engine, Method, SolveOptions, SolveResult, StoppingCriterion};
use spcg_sparse::generators::suite::suite_matrices;

fn run(method: &Method, inst: &spcg_bench::Instance) -> SolveResult {
    let opts = SolveOptions {
        tol: paper::TOL,
        max_iters: paper::MAX_ITERS,
        criterion: StoppingCriterion::TrueResidual2Norm,
        ..Default::default()
    };
    solve(method, &inst.problem(), &opts, Engine::Serial)
}

fn main() {
    let s = paper::S;
    let adaptive = adaptive_arg();
    let suite = suite_matrices();
    let entries: Vec<_> = if quick_mode() {
        suite.into_iter().step_by(5).collect()
    } else {
        suite
    };

    let mut out = String::new();
    out.push_str(&format!(
        "Table 2 — iterations to ||b-Ax||/||b-Ax0|| < 1e-9; s = {s}, Chebyshev \
         preconditioner (degree {}), one cell = monomial/chebyshev basis, '-' = failed\n\
         (synthetic difficulty-matched stand-ins for the SuiteSparse matrices; \
         'paper' column = PCG iterations reported in the paper)\n\n",
        paper::CHEB_PRECOND_DEGREE
    ));
    if adaptive {
        out.push_str(
            "AdaptiveCA-PCG column: controller-driven CA-PCG started from the *monomial*\n\
             basis with no spectral input — 'iters (Nrb)' = iterations (basis rebuilds).\n\n",
        );
    }
    let mut header = vec![
        "Matrix",
        "n",
        "nnz",
        "paper",
        "PCG",
        "sPCG",
        "CA-PCG",
        "CA-PCG3",
        "CA-PCG-GS",
        "sPCG_mon",
    ];
    if adaptive {
        // Single cell, not monomial/chebyshev: the adaptive method always
        // *starts* monomial and discovers its own Chebyshev interval.
        header.push("AdaptiveCA-PCG");
    }
    let mut t = TextTable::new(&header);

    // Aggregates for the summary block (paper §5.2 statistics).
    let mut converged = [[0usize; 2]; 4]; // [method][basis]
    let mut healthy = [[0usize; 2]; 4]; // converged without significant delay
    let mut adaptive_conv = 0usize;
    let mut adaptive_healthy = 0usize;
    let mut total = 0usize;

    for entry in &entries {
        eprintln!("[table2] {} (n = {})", entry.name, entry.n);
        let inst = prepare_instance(entry.name, entry.build(), Precond::Chebyshev);
        let pcg = run(&Method::Pcg, &inst);
        if !pcg.converged() {
            // Matches the paper's selection rule: only matrices where PCG
            // converges are in the table; report and skip aggregation.
            let mut cells = vec![
                entry.name.into(),
                entry.n.to_string(),
                inst.a.nnz().to_string(),
                entry.paper_pcg_iters.to_string(),
                "-".into(),
            ];
            cells.resize(t.width(), String::new());
            t.row(cells);
            continue;
        }
        total += 1;
        let basis_cheb = inst.chebyshev.clone();
        let methods: [(usize, [Method; 2]); 4] = [
            (
                0,
                [
                    Method::SPcg {
                        s,
                        basis: spcg_basis::BasisType::Monomial,
                    },
                    Method::SPcg {
                        s,
                        basis: basis_cheb.clone(),
                    },
                ],
            ),
            (
                1,
                [
                    Method::CaPcg {
                        s,
                        basis: spcg_basis::BasisType::Monomial,
                    },
                    Method::CaPcg {
                        s,
                        basis: basis_cheb.clone(),
                    },
                ],
            ),
            (
                2,
                [
                    Method::CaPcg3 {
                        s,
                        basis: spcg_basis::BasisType::Monomial,
                    },
                    Method::CaPcg3 {
                        s,
                        basis: basis_cheb.clone(),
                    },
                ],
            ),
            (
                3,
                [
                    Method::CaPcgGs {
                        s,
                        basis: spcg_basis::BasisType::Monomial,
                    },
                    Method::CaPcgGs {
                        s,
                        basis: basis_cheb.clone(),
                    },
                ],
            ),
        ];
        let mut cells = Vec::new();
        for (mi, [mono, cheb]) in methods {
            let rm = run(&mono, &inst);
            let rc = run(&cheb, &inst);
            for (bi, r) in [(0, &rm), (1, &rc)] {
                if r.converged() {
                    converged[mi][bi] += 1;
                    if not_significant(r.iterations, pcg.iterations, s) {
                        healthy[mi][bi] += 1;
                    }
                }
            }
            cells.push(format!("{}/{}", table2_cell(&rm), table2_cell(&rc)));
        }
        // Extra (beyond the paper's table): the original sPCG_mon.
        let r_mon = run(&Method::SPcgMon { s }, &inst);
        let mut row = vec![
            entry.name.into(),
            entry.n.to_string(),
            inst.a.nnz().to_string(),
            entry.paper_pcg_iters.to_string(),
            pcg.iterations.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            table2_cell(&r_mon),
        ];
        if adaptive {
            let r_ad = run(
                &Method::AdaptiveCaPcg {
                    s,
                    basis: spcg_basis::BasisType::Monomial,
                },
                &inst,
            );
            if r_ad.converged() {
                adaptive_conv += 1;
                if not_significant(r_ad.iterations, pcg.iterations, s) {
                    adaptive_healthy += 1;
                }
            }
            let rebuilds = r_ad
                .adaptive
                .as_ref()
                .map_or(0, |rep| rep.shift_history.len());
            row.push(format!("{} ({rebuilds}rb)", table2_cell(&r_ad)));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str(&format!(
        "\nSummary over {total} matrices (converged / without significant delay):\n"
    ));
    for (mi, name) in ["sPCG", "CA-PCG", "CA-PCG3", "CA-PCG-GS"]
        .iter()
        .enumerate()
    {
        out.push_str(&format!(
            "  {name:8} monomial {:2}/{:2}   chebyshev {:2}/{:2}\n",
            converged[mi][0], healthy[mi][0], converged[mi][1], healthy[mi][1]
        ));
    }
    if adaptive {
        out.push_str(&format!(
            "  AdaptiveCA-PCG (monomial start, controller-tuned) {adaptive_conv:2}/{adaptive_healthy:2}\n"
        ));
    }
    out.push_str(
        "\nPaper reference: CA-PCG monomial 23/6; sPCG monomial 1, CA-PCG3 monomial 2;\n\
         chebyshev: CA-PCG 35 (33 healthy), sPCG 19, CA-PCG3 21 (all healthy).\n",
    );

    let file = if adaptive {
        "table2_adaptive.txt"
    } else {
        "table2.txt"
    };
    write_results(file, &out);
}
