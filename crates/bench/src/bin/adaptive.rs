//! Ill-conditioned sweep for the adaptive-s controller. Emits
//! `BENCH_adaptive.json`: on uniform-spectrum SPD problems at
//! κ ∈ {1e4, 1e5, 1e6} it runs fixed-s CA-PCG with the monomial basis
//! (expected to diverge or stall at s = 12), fixed-s CA-PCG with the
//! oracle Chebyshev basis on [1/κ, 1] (the best a user with perfect
//! spectral knowledge could configure), and `Method::AdaptiveCaPcg`
//! started from the *monomial* basis with no spectral information at
//! all — the controller must discover the interval from running Ritz
//! values and rebuild the basis mid-solve.
//!
//! Run: `cargo run --release -p spcg-bench --bin adaptive`
//! (`SPCG_QUICK=1` restricts the sweep to κ = 1e5.)
//!
//! `benchcheck` gates the emitted file (see `check_adaptive_gate`): the
//! adaptive method must converge at every κ, at least one κ must show
//! the fixed monomial run failing while adaptive succeeds, and wherever
//! the oracle Chebyshev run converges the adaptive iteration count must
//! stay within 1.1× of it. Unpreconditioned on purpose: the paper-grade
//! claim here is about basis conditioning, and a strong preconditioner
//! would mask the monomial failure the sweep exists to demonstrate.

use spcg_basis::BasisType;
use spcg_bench::{quick_mode, write_results};
use spcg_precond::Identity;
use spcg_solvers::{solve, Engine, Method, Problem, SolveOptions, SolveResult};
use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};

/// Starting (and fixed) block size. Large enough that the monomial
/// basis loses independence on every κ in the sweep, while the
/// controller's default range still has room to shrink and regrow.
const S0: usize = 12;
const N: usize = 500;
const TOL: f64 = 1e-7;
const MAX_ITERS: usize = 8000;
const SEED: u64 = 21;

fn run(method: &Method, problem: &Problem<'_>) -> SolveResult {
    let opts = SolveOptions::default()
        .with_tol(TOL)
        .with_max_iters(MAX_ITERS);
    solve(method, problem, &opts, Engine::Serial)
}

fn json_usize_array(values: &[usize]) -> String {
    let cells: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let kappas: &[f64] = if quick_mode() {
        &[1e5]
    } else {
        &[1e4, 1e5, 1e6]
    };

    let mut iters = [Vec::new(), Vec::new(), Vec::new()]; // mono, cheb, adaptive
    let mut conv = [Vec::new(), Vec::new(), Vec::new()];
    let mut ratios = Vec::new();
    let mut shift_updates = Vec::new();
    let mut schedules: Vec<Vec<usize>> = Vec::new();

    for &kappa in kappas {
        let a = spd_with_spectrum(N, &SpectrumShape::Uniform { kappa }, 1.0, 3, SEED);
        let m = Identity::new(a.nrows());
        // Flat right-hand side: equal weight on every eigenvector of the
        // rotated spectrum, so nothing hides the small eigenvalues.
        let b = vec![1.0 / (N as f64).sqrt(); N];
        let problem = Problem::new(&a, &m, &b);
        let oracle = BasisType::Chebyshev {
            lambda_min: 1.0 / kappa,
            lambda_max: 1.0,
        };

        let methods = [
            Method::CaPcg {
                s: S0,
                basis: BasisType::Monomial,
            },
            Method::CaPcg {
                s: S0,
                basis: oracle,
            },
            Method::AdaptiveCaPcg {
                s: S0,
                basis: BasisType::Monomial,
            },
        ];
        let mut row = Vec::new();
        for (slot, method) in methods.iter().enumerate() {
            let res = run(method, &problem);
            eprintln!(
                "[adaptive] kappa {kappa:.0}: {} -> {:?} in {} iters",
                method.name(),
                res.outcome,
                res.iterations
            );
            iters[slot].push(res.iterations as f64);
            conv[slot].push(if res.converged() { 1.0 } else { 0.0 });
            row.push(res);
        }
        let cheb = &row[1];
        let adapt = &row[2];
        // -1 marks "no oracle reference" (Chebyshev itself failed) — NaN
        // is not representable in JSON and the gate recomputes from the
        // iteration arrays anyway.
        ratios.push(if cheb.converged() {
            adapt.iterations as f64 / cheb.iterations as f64
        } else {
            -1.0
        });
        let report = adapt
            .adaptive
            .as_ref()
            .expect("AdaptiveCaPcg always attaches a report");
        shift_updates.push(report.shift_history.len() as f64);
        schedules.push(adapt.s_schedule.clone());
    }

    let fmt = |values: &[f64]| {
        let cells: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
        format!("[{}]", cells.join(", "))
    };
    let schedule_rows: Vec<String> = schedules.iter().map(|s| json_usize_array(s)).collect();
    let json = format!(
        "{{\n  \"n\": {N},\n  \"s0\": {S0},\n  \"tol\": {TOL:e},\n  \"max_iters\": {MAX_ITERS},\n  \
         \"adaptive_kappas\": {},\n  \
         \"iters\": {{\n    \"monomial_fixed\": {},\n    \"chebyshev_fixed\": {},\n    \"adaptive\": {}\n  }},\n  \
         \"converged\": {{\n    \"monomial_fixed\": {},\n    \"chebyshev_fixed\": {},\n    \"adaptive\": {}\n  }},\n  \
         \"ratio_adaptive_over_chebyshev\": {},\n  \
         \"shift_updates\": {},\n  \
         \"s_schedule\": [{}]\n}}\n",
        fmt(kappas),
        fmt(&iters[0]),
        fmt(&iters[1]),
        fmt(&iters[2]),
        fmt(&conv[0]),
        fmt(&conv[1]),
        fmt(&conv[2]),
        fmt(&ratios),
        fmt(&shift_updates),
        schedule_rows.join(", "),
    );
    write_results("BENCH_adaptive.json", &json);
}
