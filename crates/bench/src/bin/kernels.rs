//! Kernel throughput sweep for the intra-rank parallel layer: SpMV, the
//! fused tall-skinny Gram product, and the blocked s-step update, each at
//! thread counts 1–8 on a 7-point 3D Poisson matrix. Emits
//! `BENCH_kernels.json` (GFLOP/s per kernel per thread count, plus the
//! speedup over one thread).
//!
//! Run: `cargo run --release -p spcg-bench --bin kernels`
//!
//! `SPCG_QUICK=1` shrinks the grid and repetition count for smoke runs;
//! `SPCG_GRID=G` overrides the grid edge. Reported numbers are best-of-reps
//! wall-clock — on machines with fewer cores than threads the sweep still
//! validates correct (deterministic) execution, it just cannot show
//! speedup.

use spcg_bench::{quick_mode, write_results};
use spcg_sparse::generators::poisson::poisson_3d;
use spcg_sparse::{DenseMat, MultiVector, ParKernels};
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const S: usize = 10;

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled_multivector(n: usize, k: usize, seed: usize) -> MultiVector {
    let cols: Vec<Vec<f64>> = (0..k)
        .map(|j| {
            (0..n)
                .map(|i| (((i * 31 + (seed + j) * 17) % 41) as f64) / 41.0 - 0.5)
                .collect()
        })
        .collect();
    MultiVector::from_columns(&cols)
}

fn json_array(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let quick = quick_mode();
    let default_grid = if quick { 24 } else { 48 };
    let grid: usize = std::env::var("SPCG_GRID")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_grid);
    let reps = if quick { 2 } else { 5 };

    eprintln!(
        "[kernels] building 3D Poisson {grid}^3 ({} rows), s = {S}, reps = {reps}",
        grid * grid * grid
    );
    let a = poisson_3d(grid);
    let n = a.nrows();
    let nnz = a.nnz();

    let x: Vec<f64> = (0..n).map(|i| ((i % 37) as f64) / 37.0 - 0.5).collect();
    let mut y = vec![0.0; n];
    // CA-PCG Gram shape at s = 10: a (2s+1)-column block against itself.
    let v_gram = filled_multivector(n, 2 * S + 1, 7);
    let u_mat = filled_multivector(n, S, 3);
    let b_small = DenseMat::from_fn(S, S, |i, j| (((i * 5 + j * 3) % 11) as f64) / 11.0 - 0.5);
    let mut scratch = MultiVector::zeros(n, S);

    // FLOPs per call: SpMV 2·nnz; Gram k² entries of 2n each; blocked
    // update P ← U + P·B is 2·s²·n.
    let k = 2 * S + 1;
    let spmv_flops = 2.0 * nnz as f64;
    let gram_flops = 2.0 * (k * k) as f64 * n as f64;
    let update_flops = 2.0 * (S * S) as f64 * n as f64;

    let mut spmv_gf = Vec::new();
    let mut gram_gf = Vec::new();
    let mut update_gf = Vec::new();
    for &t in &THREADS {
        let pk = ParKernels::new(t);
        // Warm the cached row schedule so it is not timed.
        pk.spmv(&a, &x, &mut y);
        let ts = time_best(reps, || pk.spmv(&a, &x, &mut y));
        let tg = time_best(reps, || {
            let _ = pk.gram(&v_gram, &v_gram);
        });
        let mut p_mat = filled_multivector(n, S, 5);
        let tu = time_best(reps, || {
            p_mat.blocked_update_par(&pk, &u_mat, &b_small, &mut scratch);
        });
        spmv_gf.push(spmv_flops / ts / 1e9);
        gram_gf.push(gram_flops / tg / 1e9);
        update_gf.push(update_flops / tu / 1e9);
        eprintln!(
            "[kernels] threads={t}: spmv {:.2} GF/s, gram {:.2} GF/s, update {:.2} GF/s",
            spmv_gf.last().unwrap(),
            gram_gf.last().unwrap(),
            update_gf.last().unwrap()
        );
    }

    let speedup = |gf: &[f64]| -> Vec<f64> { gf.iter().map(|g| g / gf[0]).collect() };
    let threads_list: Vec<String> = THREADS.iter().map(|t| t.to_string()).collect();
    let out = format!(
        "{{\n  \"matrix\": \"poisson3d_{grid}\",\n  \"n\": {n},\n  \"nnz\": {nnz},\n  \"s\": {S},\n  \"gram_columns\": {k},\n  \"reps\": {reps},\n  \"threads\": [{}],\n  \"gflops\": {{\n    \"spmv\": {},\n    \"gram_fused\": {},\n    \"blocked_update\": {}\n  }},\n  \"speedup_vs_1_thread\": {{\n    \"spmv\": {},\n    \"gram_fused\": {},\n    \"blocked_update\": {}\n  }}\n}}\n",
        threads_list.join(", "),
        json_array(&spmv_gf),
        json_array(&gram_gf),
        json_array(&update_gf),
        json_array(&speedup(&spmv_gf)),
        json_array(&speedup(&gram_gf)),
        json_array(&speedup(&update_gf)),
    );
    write_results("BENCH_kernels.json", &out);
}
