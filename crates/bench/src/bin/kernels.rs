//! Kernel throughput sweep for the intra-rank parallel layer: SpMV, the
//! fused tall-skinny Gram product, and the blocked s-step update, each at
//! thread counts 1–8 on a 7-point 3D Poisson matrix. Emits
//! `BENCH_kernels.json` (GFLOP/s per kernel per thread count, plus the
//! speedup over one thread) and `BENCH_overlap.json` (interior/frontier
//! split-SpMV and halo post/complete timings per rank count).
//!
//! Run: `cargo run --release -p spcg-bench --bin kernels`
//!
//! `SPCG_QUICK=1` shrinks the grid and repetition count for smoke runs;
//! `SPCG_GRID=G` overrides the grid edge. Reported numbers are best-of-reps
//! wall-clock — on machines with fewer cores than threads the sweep still
//! validates correct (deterministic) execution, it just cannot show
//! speedup.
//!
//! The blocked update is reported twice: `blocked_update_cold` is the very
//! first call at each thread count (it pays one-time costs — thread-pool
//! spin-up, first-touch page faults on the scratch block, schedule build)
//! and `blocked_update` is best-of-reps *after* a warm-up pass. Earlier
//! revisions timed the cold call only, which inflated the 1-thread number
//! by roughly 2× and made the thread-scaling curve look superlinear.

use spcg_bench::{quick_mode, write_results};
use spcg_dist::executor::run_ranks;
use spcg_dist::{ThreadComm, VectorBoard};
use spcg_sparse::generators::poisson::poisson_3d;
use spcg_sparse::partition::BlockRowPartition;
use spcg_sparse::{CsrMatrix, DenseMat, GhostZone, MultiVector, ParKernels};
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const RANKS: [usize; 3] = [1, 2, 4];
const S: usize = 10;

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled_multivector(n: usize, k: usize, seed: usize) -> MultiVector {
    let cols: Vec<Vec<f64>> = (0..k)
        .map(|j| {
            (0..n)
                .map(|i| (((i * 31 + (seed + j) * 17) % 41) as f64) / 41.0 - 0.5)
                .collect()
        })
        .collect();
    MultiVector::from_columns(&cols)
}

fn json_array(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    format!("[{}]", cells.join(", "))
}

fn json_array_sci(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.3e}")).collect();
    format!("[{}]", cells.join(", "))
}

/// Per-phase best-of-reps seconds for one rank of the split-phase
/// exchange + interior/frontier SpMV round.
struct OverlapSample {
    post: f64,
    interior: f64,
    complete: f64,
    frontier: f64,
    n_interior: usize,
    n_frontier: usize,
    halo_words: usize,
}

/// Runs `reps` split-phase rounds on `ranks` rank threads and returns the
/// critical-path (max-over-ranks) per-phase timings. This is the exact
/// schedule `Engine::Ranked` uses with overlap on: post → interior SpMV →
/// complete → frontier SpMV, one exchange per round.
fn overlap_round(a: &CsrMatrix, x: &[f64], ranks: usize, reps: usize) -> OverlapSample {
    let n = a.nrows();
    let part = BlockRowPartition::balanced(n, ranks);
    let offsets: Vec<usize> = (0..ranks).map(|r| part.range(r).0).chain([n]).collect();
    let board = VectorBoard::new(offsets);
    let samples = run_ranks(ranks, |comm: ThreadComm| {
        let (lo, hi) = part.range(comm.rank());
        let nl = hi - lo;
        let gz = GhostZone::new(a, lo, hi, 1);
        let plan = board.plan(gz.ghost_indices());
        let pk = ParKernels::new(1);
        let x_local = &x[lo..hi];
        let mut ext = vec![0.0; gz.ext_len()];
        let mut y = vec![0.0; nl];
        let mut best = OverlapSample {
            post: f64::INFINITY,
            interior: f64::INFINITY,
            complete: f64::INFINITY,
            frontier: f64::INFINITY,
            n_interior: gz.interior_rows().len(),
            n_frontier: gz.frontier_rows(nl).len(),
            halo_words: plan.words(),
        };
        for _ in 0..reps {
            let t0 = Instant::now();
            board.post(&comm, x_local);
            let t_post = t0.elapsed().as_secs_f64();
            ext[..nl].copy_from_slice(x_local);
            let t0 = Instant::now();
            gz.spmv_rows_list_par(&pk, gz.interior_rows(), &ext, &mut y);
            let t_int = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            board.complete_into(&comm, &plan, &mut ext[nl..]);
            let t_comp = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            gz.spmv_rows_list_par(&pk, gz.frontier_rows(nl), &ext, &mut y);
            let t_front = t0.elapsed().as_secs_f64();
            best.post = best.post.min(t_post);
            best.interior = best.interior.min(t_int);
            best.complete = best.complete.min(t_comp);
            best.frontier = best.frontier.min(t_front);
        }
        best
    });
    // Critical path: the slowest rank gates each phase; counts sum.
    let max = |f: fn(&OverlapSample) -> f64| samples.iter().map(f).fold(0.0f64, f64::max);
    OverlapSample {
        post: max(|s| s.post),
        interior: max(|s| s.interior),
        complete: max(|s| s.complete),
        frontier: max(|s| s.frontier),
        n_interior: samples.iter().map(|s| s.n_interior).sum(),
        n_frontier: samples.iter().map(|s| s.n_frontier).sum(),
        halo_words: samples.iter().map(|s| s.halo_words).sum(),
    }
}

fn main() {
    let quick = quick_mode();
    let default_grid = if quick { 24 } else { 48 };
    let grid: usize = std::env::var("SPCG_GRID")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_grid);
    let reps = if quick { 2 } else { 5 };

    eprintln!(
        "[kernels] building 3D Poisson {grid}^3 ({} rows), s = {S}, reps = {reps}",
        grid * grid * grid
    );
    let a = poisson_3d(grid);
    let n = a.nrows();
    let nnz = a.nnz();

    let x: Vec<f64> = (0..n).map(|i| ((i % 37) as f64) / 37.0 - 0.5).collect();
    let mut y = vec![0.0; n];
    // CA-PCG Gram shape at s = 10: a (2s+1)-column block against itself.
    let v_gram = filled_multivector(n, 2 * S + 1, 7);
    let u_mat = filled_multivector(n, S, 3);
    let b_small = DenseMat::from_fn(S, S, |i, j| (((i * 5 + j * 3) % 11) as f64) / 11.0 - 0.5);
    let mut scratch = MultiVector::zeros(n, S);

    // FLOPs per call: SpMV 2·nnz; Gram k² entries of 2n each; blocked
    // update P ← U + P·B is 2·s²·n.
    let k = 2 * S + 1;
    let spmv_flops = 2.0 * nnz as f64;
    let gram_flops = 2.0 * (k * k) as f64 * n as f64;
    let update_flops = 2.0 * (S * S) as f64 * n as f64;

    let mut spmv_gf = Vec::new();
    let mut gram_gf = Vec::new();
    let mut update_gf = Vec::new();
    let mut update_cold_gf = Vec::new();
    for &t in &THREADS {
        let pk = ParKernels::new(t);
        // Warm the cached row schedule so it is not timed.
        pk.spmv(&a, &x, &mut y);
        let ts = time_best(reps, || pk.spmv(&a, &x, &mut y));
        let tg = time_best(reps, || {
            let _ = pk.gram(&v_gram, &v_gram);
        });
        let mut p_mat = filled_multivector(n, S, 5);
        // Cold: the first call pays pool spin-up and first-touch faults.
        let t0 = Instant::now();
        p_mat.blocked_update_par(&pk, &u_mat, &b_small, &mut scratch);
        let tu_cold = t0.elapsed().as_secs_f64();
        // Warm: steady-state best-of-reps, the number solver iterations see.
        let tu = time_best(reps, || {
            p_mat.blocked_update_par(&pk, &u_mat, &b_small, &mut scratch);
        });
        spmv_gf.push(spmv_flops / ts / 1e9);
        gram_gf.push(gram_flops / tg / 1e9);
        update_gf.push(update_flops / tu / 1e9);
        update_cold_gf.push(update_flops / tu_cold / 1e9);
        eprintln!(
            "[kernels] threads={t}: spmv {:.2} GF/s, gram {:.2} GF/s, update {:.2} GF/s (cold {:.2})",
            spmv_gf.last().unwrap(),
            gram_gf.last().unwrap(),
            update_gf.last().unwrap(),
            update_cold_gf.last().unwrap()
        );
    }

    let speedup = |gf: &[f64]| -> Vec<f64> { gf.iter().map(|g| g / gf[0]).collect() };
    let threads_list: Vec<String> = THREADS.iter().map(|t| t.to_string()).collect();
    let out = format!(
        "{{\n  \"matrix\": \"poisson3d_{grid}\",\n  \"n\": {n},\n  \"nnz\": {nnz},\n  \"s\": {S},\n  \"gram_columns\": {k},\n  \"reps\": {reps},\n  \"threads\": [{}],\n  \"gflops\": {{\n    \"spmv\": {},\n    \"gram_fused\": {},\n    \"blocked_update\": {},\n    \"blocked_update_cold\": {}\n  }},\n  \"speedup_vs_1_thread\": {{\n    \"spmv\": {},\n    \"gram_fused\": {},\n    \"blocked_update\": {}\n  }}\n}}\n",
        threads_list.join(", "),
        json_array(&spmv_gf),
        json_array(&gram_gf),
        json_array(&update_gf),
        json_array(&update_cold_gf),
        json_array(&speedup(&spmv_gf)),
        json_array(&speedup(&gram_gf)),
        json_array(&speedup(&update_gf)),
    );
    write_results("BENCH_kernels.json", &out);

    // Split-phase overlap round: per rank count, time each phase of
    // post → interior SpMV → complete → frontier SpMV on real rank threads.
    let mut post_s = Vec::new();
    let mut interior_s = Vec::new();
    let mut complete_s = Vec::new();
    let mut frontier_s = Vec::new();
    let mut interior_frac = Vec::new();
    let mut halo_words = Vec::new();
    for &r in &RANKS {
        let s = overlap_round(&a, &x, r, reps);
        eprintln!(
            "[kernels] ranks={r}: post {:.1}us, interior {:.1}us ({} rows), complete {:.1}us, frontier {:.1}us ({} rows), halo {} words",
            s.post * 1e6,
            s.interior * 1e6,
            s.n_interior,
            s.complete * 1e6,
            s.frontier * 1e6,
            s.n_frontier,
            s.halo_words
        );
        interior_frac.push(s.n_interior as f64 / n as f64);
        post_s.push(s.post);
        interior_s.push(s.interior);
        complete_s.push(s.complete);
        frontier_s.push(s.frontier);
        halo_words.push(s.halo_words as f64);
    }
    let ranks_list: Vec<String> = RANKS.iter().map(|r| r.to_string()).collect();
    let out = format!(
        "{{\n  \"matrix\": \"poisson3d_{grid}\",\n  \"n\": {n},\n  \"nnz\": {nnz},\n  \"reps\": {reps},\n  \"ranks\": [{}],\n  \"seconds_max_over_ranks\": {{\n    \"exchange_post\": {},\n    \"spmv_interior\": {},\n    \"exchange_complete\": {},\n    \"spmv_frontier\": {}\n  }},\n  \"interior_row_fraction\": {},\n  \"halo_words_total\": {}\n}}\n",
        ranks_list.join(", "),
        json_array_sci(&post_s),
        json_array_sci(&interior_s),
        json_array_sci(&complete_s),
        json_array_sci(&frontier_s),
        json_array(&interior_frac),
        json_array(&halo_words),
    );
    write_results("BENCH_overlap.json", &out);
}
