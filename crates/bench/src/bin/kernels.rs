//! Kernel throughput sweep for the intra-rank parallel layer: SpMV, the
//! fused tall-skinny Gram product, and the blocked s-step update, each at
//! thread counts 1–8 on a 7-point 3D Poisson matrix. Emits
//! `BENCH_kernels.json` (GFLOP/s per kernel per thread count, plus the
//! speedup over one thread) and `BENCH_overlap.json` (interior/frontier
//! split-SpMV and halo post/complete timings per rank count).
//!
//! Run: `cargo run --release -p spcg-bench --bin kernels`
//!
//! `SPCG_QUICK=1` shrinks the grid and repetition count for smoke runs;
//! `SPCG_GRID=G` overrides the grid edge. Reported numbers are best-of-reps
//! wall-clock — on machines with fewer cores than threads the sweep still
//! validates correct (deterministic) execution, it just cannot show
//! speedup.
//!
//! All timing goes through `spcg_obs` spans — the same tracer the solvers
//! use — so the bench and a traced solve report the same quantities. Each
//! rep records one span; `TrackSpans::min_duration_s` yields best-of-reps.
//!
//! The blocked update is reported twice: `blocked_update_cold` is the very
//! first call at each thread count (it pays one-time costs — thread-pool
//! spin-up, first-touch page faults on the scratch block, schedule build)
//! and `blocked_update` is best-of-reps *after* a warm-up pass. Earlier
//! revisions timed the cold call only, which inflated the 1-thread number
//! by roughly 2× and made the thread-scaling curve look superlinear.

use spcg_basis::{BasisParams, Mpk};
use spcg_bench::{quick_mode, write_results};
use spcg_dist::executor::run_ranks;
use spcg_dist::{Counters, ThreadComm, VectorBoard};
use spcg_obs::{Phase, Tracer};
use spcg_precond::Jacobi;
use spcg_sparse::generators::poisson::poisson_3d;
use spcg_sparse::partition::BlockRowPartition;
use spcg_sparse::{CsrMatrix, DenseMat, MultiVector, ParKernels, SparseFormat};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const RANKS: [usize; 3] = [1, 2, 4];
const S: usize = 10;

/// Cold call goes on this pseudo-thread id so it stays separate from the
/// warm best-of-reps track of the same kernel.
const COLD_THREAD: usize = 1;
/// Pseudo-thread ids for the SELL-C-σ legs: the warm and cold SpMV on the
/// sliced format, and the cache-fused vs level-by-level matrix powers
/// sweep (both on SELL storage, so the delta is the fusion alone).
const SELL_THREAD: usize = 2;
const SELL_COLD_THREAD: usize = 3;
const MPK_FUSED_THREAD: usize = 4;
const MPK_LEVEL_THREAD: usize = 5;

fn filled_multivector(n: usize, k: usize, seed: usize) -> MultiVector {
    let cols: Vec<Vec<f64>> = (0..k)
        .map(|j| {
            (0..n)
                .map(|i| (((i * 31 + (seed + j) * 17) % 41) as f64) / 41.0 - 0.5)
                .collect()
        })
        .collect();
    MultiVector::from_columns(&cols)
}

fn json_array(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    format!("[{}]", cells.join(", "))
}

fn json_array_sci(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.3e}")).collect();
    format!("[{}]", cells.join(", "))
}

/// Runs `reps` split-phase rounds on `ranks` rank threads and returns the
/// critical-path (max-over-ranks) best-of-reps seconds per phase, keyed
/// `(post, interior, complete, frontier)`, plus summed row/word counts.
/// This is the exact schedule `Engine::Ranked` uses with overlap on:
/// post → interior SpMV → complete → frontier SpMV, one exchange per
/// round. The phase timings come from the same obs spans the traced
/// solver emits (`ExchangePost`/`Spmv`/`ExchangeWait`/`Frontier`).
fn overlap_round(
    a: &CsrMatrix,
    x: &[f64],
    ranks: usize,
    reps: usize,
) -> ([f64; 4], usize, usize, usize) {
    let n = a.nrows();
    let part = BlockRowPartition::balanced(n, ranks);
    let offsets: Vec<usize> = (0..ranks).map(|r| part.range(r).0).chain([n]).collect();
    let board = VectorBoard::new(offsets);
    let tracer = Tracer::new();
    let counts = run_ranks(ranks, |comm: ThreadComm| {
        let track = tracer.track(comm.rank());
        let (lo, hi) = part.range(comm.rank());
        let nl = hi - lo;
        let gz = spcg_sparse::GhostZone::new(a, lo, hi, 1);
        let plan = board.plan(gz.ghost_indices());
        let pk = ParKernels::new(1);
        let x_local = &x[lo..hi];
        let mut ext = vec![0.0; gz.ext_len()];
        let mut y = vec![0.0; nl];
        for _ in 0..reps {
            board.post_traced(&comm, x_local, Some(&track));
            ext[..nl].copy_from_slice(x_local);
            {
                let _s = track.span(Phase::Spmv);
                gz.spmv_rows_list_par(&pk, gz.interior_rows(), &ext, &mut y);
            }
            board.complete_into_traced(&comm, &plan, &mut ext[nl..], Some(&track));
            {
                let _s = track.span(Phase::Frontier);
                gz.spmv_rows_list_par(&pk, gz.frontier_rows(nl), &ext, &mut y);
            }
        }
        (
            gz.interior_rows().len(),
            gz.frontier_rows(nl).len(),
            plan.words(),
        )
    });
    // Critical path: the slowest rank gates each phase; counts sum.
    let phases = [
        Phase::ExchangePost,
        Phase::Spmv,
        Phase::ExchangeWait,
        Phase::Frontier,
    ];
    let mut best = [0.0f64; 4];
    for track in tracer.tracks() {
        for (slot, &phase) in best.iter_mut().zip(&phases) {
            let rank_best = track.min_duration_s(phase).unwrap_or(0.0);
            *slot = slot.max(rank_best);
        }
    }
    let n_interior = counts.iter().map(|c| c.0).sum();
    let n_frontier = counts.iter().map(|c| c.1).sum();
    let halo_words = counts.iter().map(|c| c.2).sum();
    (best, n_interior, n_frontier, halo_words)
}

fn main() {
    let quick = quick_mode();
    let default_grid = if quick { 24 } else { 48 };
    let grid: usize = spcg_solvers::env::parsed("SPCG_GRID").unwrap_or(default_grid);
    let reps = if quick { 2 } else { 5 };

    eprintln!(
        "[kernels] building 3D Poisson {grid}^3 ({} rows), s = {S}, reps = {reps}",
        grid * grid * grid
    );
    let a = poisson_3d(grid);
    let n = a.nrows();
    let nnz = a.nnz();

    let x: Vec<f64> = (0..n).map(|i| ((i % 37) as f64) / 37.0 - 0.5).collect();
    let mut y = vec![0.0; n];
    // CA-PCG Gram shape at s = 10: a (2s+1)-column block against itself.
    let v_gram = filled_multivector(n, 2 * S + 1, 7);
    let u_mat = filled_multivector(n, S, 3);
    let b_small = DenseMat::from_fn(S, S, |i, j| (((i * 5 + j * 3) % 11) as f64) / 11.0 - 0.5);
    let mut scratch = MultiVector::zeros(n, S);

    // FLOPs per call: SpMV 2·nnz; Gram k² entries of 2n each; blocked
    // update P ← U + P·B is 2·s²·n.
    let k = 2 * S + 1;
    let spmv_flops = 2.0 * nnz as f64;
    let gram_flops = 2.0 * (k * k) as f64 * n as f64;
    let update_flops = 2.0 * (S * S) as f64 * n as f64;

    // SELL-C-σ leg: one conversion (cached on the matrix), shared across
    // thread counts. The fused-MPK comparator runs the same SELL storage
    // level-by-level, so the measured delta is the cache fusion alone.
    let sell = a.sell();
    let m_jac = Jacobi::new(&a);
    let mpk_params = BasisParams::chebyshev(0.1, 11.9, S);
    // FLOPs of one depth-S sweep, taken from the counters of a probe run
    // (SpMV + basis corrections + pointwise precond) so the fused and the
    // level-by-level leg are normalized by the identical total.
    let mpk_flops: f64 = {
        let probe = Mpk::new_par(&a, &m_jac, ParKernels::new(1)).with_format(SparseFormat::Sell);
        let mut v = MultiVector::zeros(n, S + 1);
        let mut mv = MultiVector::zeros(n, S + 1);
        let mut c = Counters::new();
        probe.run(&x, None, &mpk_params, &mut v, &mut mv, &mut c);
        (c.spmv_flops + c.blas1_flops + c.precond_flops) as f64
    };

    let mut spmv_gf = Vec::new();
    let mut spmv_sell_gf = Vec::new();
    let mut spmv_sell_cold_gf = Vec::new();
    let mut mpk_fused_gf = Vec::new();
    let mut mpk_level_gf = Vec::new();
    let mut gram_gf = Vec::new();
    let mut update_gf = Vec::new();
    let mut update_cold_gf = Vec::new();
    for &t in &THREADS {
        let pk = ParKernels::new(t);
        // One tracer per thread count: rank id = thread count, the warm
        // best-of-reps spans on thread 0, the cold call on COLD_THREAD.
        let tracer = Tracer::new();
        {
            let track = tracer.track_on(t, 0);
            let cold = tracer.track_on(t, COLD_THREAD);
            // Warm the cached row schedule so it is not timed.
            pk.spmv(&a, &x, &mut y);
            for _ in 0..reps {
                let _s = track.span(Phase::Spmv);
                pk.spmv(&a, &x, &mut y);
            }
            for _ in 0..reps {
                let _s = track.span(Phase::Gram);
                let _ = pk.gram(&v_gram, &v_gram);
            }
            let mut p_mat = filled_multivector(n, S, 5);
            // Cold: the first call pays pool spin-up and first-touch faults.
            {
                let _s = cold.span(Phase::VecUpdate);
                p_mat.blocked_update_par(&pk, &u_mat, &b_small, &mut scratch);
            }
            // Warm: steady-state best-of-reps, the number iterations see.
            for _ in 0..reps {
                let _s = track.span(Phase::VecUpdate);
                p_mat.blocked_update_par(&pk, &u_mat, &b_small, &mut scratch);
            }

            // SELL-C-σ SpMV: the cold call pays the slice-schedule build
            // for this thread count; warm is best-of-reps on the same
            // cached schedule.
            let sell_warm = tracer.track_on(t, SELL_THREAD);
            let sell_cold = tracer.track_on(t, SELL_COLD_THREAD);
            {
                let _s = sell_cold.span(Phase::Spmv);
                pk.spmv_sell(&sell, &x, &mut y);
            }
            for _ in 0..reps {
                let _s = sell_warm.span(Phase::Spmv);
                pk.spmv_sell(&sell, &x, &mut y);
            }

            // Matrix powers sweep on SELL storage, cache-fused tile sweep
            // vs plain level-by-level: same storage, same recurrence, same
            // counters — the measured delta is the fusion alone.
            let fused_track = tracer.track_on(t, MPK_FUSED_THREAD);
            let level_track = tracer.track_on(t, MPK_LEVEL_THREAD);
            let mpk_fused =
                Mpk::new_par(&a, &m_jac, ParKernels::new(t)).with_format(SparseFormat::Sell);
            let mpk_level = Mpk::new_par(&a, &m_jac, ParKernels::new(t))
                .with_format(SparseFormat::Sell)
                .with_fused(false);
            assert!(
                mpk_fused.fused_applicable(S + 1),
                "fused MPK gate rejected the bench problem (s = {S})"
            );
            let mut v = MultiVector::zeros(n, S + 1);
            let mut mv = MultiVector::zeros(n, S + 1);
            let mut c = Counters::new();
            // One warm-up per leg, then best-of-reps.
            mpk_fused.run(&x, None, &mpk_params, &mut v, &mut mv, &mut c);
            for _ in 0..reps {
                let _s = fused_track.span(Phase::MpkLevel);
                mpk_fused.run(&x, None, &mpk_params, &mut v, &mut mv, &mut c);
            }
            mpk_level.run(&x, None, &mpk_params, &mut v, &mut mv, &mut c);
            for _ in 0..reps {
                let _s = level_track.span(Phase::MpkLevel);
                mpk_level.run(&x, None, &mpk_params, &mut v, &mut mv, &mut c);
            }
        }
        let tracks = tracer.tracks();
        let min_of = |thread: usize, phase: Phase| -> f64 {
            tracks
                .iter()
                .find(|tr| tr.thread == thread)
                .and_then(|tr| tr.min_duration_s(phase))
                .expect("bench span missing")
        };
        let ts = min_of(0, Phase::Spmv);
        let tg = min_of(0, Phase::Gram);
        let tu = min_of(0, Phase::VecUpdate);
        let tu_cold = min_of(COLD_THREAD, Phase::VecUpdate);
        let ts_sell = min_of(SELL_THREAD, Phase::Spmv);
        let ts_sell_cold = min_of(SELL_COLD_THREAD, Phase::Spmv);
        let tm_fused = min_of(MPK_FUSED_THREAD, Phase::MpkLevel);
        let tm_level = min_of(MPK_LEVEL_THREAD, Phase::MpkLevel);
        spmv_gf.push(spmv_flops / ts / 1e9);
        spmv_sell_gf.push(spmv_flops / ts_sell / 1e9);
        spmv_sell_cold_gf.push(spmv_flops / ts_sell_cold / 1e9);
        mpk_fused_gf.push(mpk_flops / tm_fused / 1e9);
        mpk_level_gf.push(mpk_flops / tm_level / 1e9);
        gram_gf.push(gram_flops / tg / 1e9);
        update_gf.push(update_flops / tu / 1e9);
        update_cold_gf.push(update_flops / tu_cold / 1e9);
        eprintln!(
            "[kernels] threads={t}: spmv {:.2} GF/s (sell {:.2}), mpk fused {:.2} vs level {:.2} GF/s, gram {:.2} GF/s, update {:.2} GF/s (cold {:.2})",
            spmv_gf.last().unwrap(),
            spmv_sell_gf.last().unwrap(),
            mpk_fused_gf.last().unwrap(),
            mpk_level_gf.last().unwrap(),
            gram_gf.last().unwrap(),
            update_gf.last().unwrap(),
            update_cold_gf.last().unwrap()
        );
    }

    let speedup = |gf: &[f64]| -> Vec<f64> { gf.iter().map(|g| g / gf[0]).collect() };
    let threads_list: Vec<String> = THREADS.iter().map(|t| t.to_string()).collect();
    // The physical core budget, so a reader (and benchcheck) can tell a
    // kernel that fails to scale from a machine that cannot show scaling.
    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());
    let out = format!(
        "{{\n  \"matrix\": \"poisson3d_{grid}\",\n  \"n\": {n},\n  \"nnz\": {nnz},\n  \"s\": {S},\n  \"gram_columns\": {k},\n  \"reps\": {reps},\n  \"nproc\": {nproc},\n  \"threads\": [{}],\n  \"sell_pad_ratio\": {:.4},\n  \"gflops\": {{\n    \"spmv\": {},\n    \"spmv_sell\": {},\n    \"spmv_sell_cold\": {},\n    \"mpk_fused\": {},\n    \"mpk_levelwise_sell\": {},\n    \"gram_fused\": {},\n    \"blocked_update\": {},\n    \"blocked_update_cold\": {}\n  }},\n  \"speedup_vs_1_thread\": {{\n    \"spmv\": {},\n    \"spmv_sell\": {},\n    \"spmv_sell_cold\": {},\n    \"mpk_fused\": {},\n    \"mpk_levelwise_sell\": {},\n    \"gram_fused\": {},\n    \"blocked_update\": {},\n    \"blocked_update_cold\": {}\n  }}\n}}\n",
        threads_list.join(", "),
        sell.pad_ratio(),
        json_array(&spmv_gf),
        json_array(&spmv_sell_gf),
        json_array(&spmv_sell_cold_gf),
        json_array(&mpk_fused_gf),
        json_array(&mpk_level_gf),
        json_array(&gram_gf),
        json_array(&update_gf),
        json_array(&update_cold_gf),
        json_array(&speedup(&spmv_gf)),
        json_array(&speedup(&spmv_sell_gf)),
        json_array(&speedup(&spmv_sell_cold_gf)),
        json_array(&speedup(&mpk_fused_gf)),
        json_array(&speedup(&mpk_level_gf)),
        json_array(&speedup(&gram_gf)),
        json_array(&speedup(&update_gf)),
        json_array(&speedup(&update_cold_gf)),
    );
    write_results("BENCH_kernels.json", &out);

    // Split-phase overlap round: per rank count, time each phase of
    // post → interior SpMV → complete → frontier SpMV on real rank threads.
    let mut post_s = Vec::new();
    let mut interior_s = Vec::new();
    let mut complete_s = Vec::new();
    let mut frontier_s = Vec::new();
    let mut interior_frac = Vec::new();
    let mut halo_words = Vec::new();
    for &r in &RANKS {
        let ([post, interior, complete, frontier], n_int, n_front, words) =
            overlap_round(&a, &x, r, reps);
        eprintln!(
            "[kernels] ranks={r}: post {:.1}us, interior {:.1}us ({n_int} rows), complete {:.1}us, frontier {:.1}us ({n_front} rows), halo {words} words",
            post * 1e6,
            interior * 1e6,
            complete * 1e6,
            frontier * 1e6,
        );
        interior_frac.push(n_int as f64 / n as f64);
        post_s.push(post);
        interior_s.push(interior);
        complete_s.push(complete);
        frontier_s.push(frontier);
        halo_words.push(words as f64);
    }
    let ranks_list: Vec<String> = RANKS.iter().map(|r| r.to_string()).collect();
    let out = format!(
        "{{\n  \"matrix\": \"poisson3d_{grid}\",\n  \"n\": {n},\n  \"nnz\": {nnz},\n  \"reps\": {reps},\n  \"ranks\": [{}],\n  \"seconds_max_over_ranks\": {{\n    \"exchange_post\": {},\n    \"spmv_interior\": {},\n    \"exchange_complete\": {},\n    \"spmv_frontier\": {}\n  }},\n  \"interior_row_fraction\": {},\n  \"halo_words_total\": {}\n}}\n",
        ranks_list.join(", "),
        json_array_sci(&post_s),
        json_array_sci(&interior_s),
        json_array_sci(&complete_s),
        json_array_sci(&frontier_s),
        json_array(&interior_frac),
        json_array(&halo_words),
    );
    write_results("BENCH_overlap.json", &out);
}
