//! Validates a Chrome trace-event export produced by the obs tracer (the
//! `--trace` flag of the fig1/table3 binaries, or `SolveOptions::trace`):
//! well-formed JSON, a `traceEvents` array, matched and properly nested
//! B/E pairs per (pid, tid) track, and non-decreasing timestamps.
//!
//! Run: `cargo run -p spcg-bench --bin tracecheck -- <trace.json> [...]`
//!
//! Exits non-zero on the first invalid file; CI round-trips every exported
//! trace through this check.

use spcg_obs::validate_chrome_trace;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: tracecheck <trace.json> [more.json ...]");
        std::process::exit(2);
    }
    for path in &paths {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                std::process::exit(1);
            }
        };
        match validate_chrome_trace(&src) {
            Ok(stats) => println!(
                "{path}: ok — {} events, {} spans, {} tracks",
                stats.events, stats.spans, stats.tracks
            ),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }
}
