//! Shared experiment-harness utilities for the Table/Figure regeneration
//! binaries (`table1`, `table2`, `table3`, `fig1`) and the kernel
//! benchmarks.

pub mod harness;

use spcg_basis::BasisType;
use spcg_dist::Counters;
use spcg_precond::{ChebyshevPrecond, Jacobi, Preconditioner};
use spcg_solvers::{Problem, SolveResult};
use spcg_sparse::generators::paper_rhs;
use spcg_sparse::CsrMatrix;
use std::path::PathBuf;
use std::sync::Arc;

/// Table-2/3 configuration constants from the paper (§5.2–5.3).
pub mod paper {
    /// s-step block size of the evaluation.
    pub const S: usize = 10;
    /// Degree of the Chebyshev preconditioner.
    pub const CHEB_PRECOND_DEGREE: usize = 3;
    /// Relative reduction of the stopping criteria.
    pub const TOL: f64 = 1e-9;
    /// Iteration cap; beyond it an instance counts as not converged.
    pub const MAX_ITERS: usize = 12_000;
    /// Warm-up PCG iterations for eigenvalue estimates (§5.1: "a few
    /// iterations of standard PCG, not included in the runtimes").
    pub const WARMUP_ITERS: usize = 20;
    /// Widening applied to the Ritz interval.
    pub const MARGIN: f64 = 0.05;
    /// Warm-up length / margin for Jacobi-preconditioned instances: the
    /// Jacobi-preconditioned operator of a scattered-spectrum matrix is
    /// harder to bracket with few Lanczos steps, and an under-covered
    /// Chebyshev basis interval is fatal to the s-step methods.
    pub const WARMUP_ITERS_JACOBI: usize = 40;
    /// See [`WARMUP_ITERS_JACOBI`].
    pub const MARGIN_JACOBI: f64 = 0.10;
}

/// A fully prepared experiment instance: matrix, right-hand side,
/// preconditioner, and pre-estimated Chebyshev basis.
pub struct Instance {
    /// Instance label (matrix name).
    pub name: String,
    /// System matrix.
    pub a: Arc<CsrMatrix>,
    /// Paper-style right-hand side (`x* = 1/√n`).
    pub b: Vec<f64>,
    /// Preconditioner.
    pub m: Box<dyn Preconditioner>,
    /// Chebyshev basis from the warm-up run (w.r.t. `M⁻¹A`).
    pub chebyshev: BasisType,
}

impl Instance {
    /// Borrows the problem view.
    pub fn problem(&self) -> Problem<'_> {
        Problem::new(&self.a, self.m.as_ref(), &self.b)
    }
}

/// Which preconditioner an instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precond {
    /// Diagonal (Jacobi).
    Jacobi,
    /// Chebyshev polynomial of the paper's degree 3.
    Chebyshev,
}

/// Builds an [`Instance`]: preconditioner from Gershgorin/warm-up spectral
/// estimates, plus the Chebyshev *basis* interval for the preconditioned
/// operator (both following the paper's §5.1 setup).
pub fn prepare_instance(name: &str, a: CsrMatrix, precond: Precond) -> Instance {
    let a = Arc::new(a);
    let b = paper_rhs(&a);
    let m: Box<dyn Preconditioner> = match precond {
        Precond::Jacobi => Box::new(Jacobi::new(&a)),
        Precond::Chebyshev => {
            // Interval for the *matrix* spectrum: estimate with
            // unpreconditioned warm-up CG (identity preconditioner).
            let ident = spcg_precond::Identity::new(a.nrows());
            let est = spcg_basis::ritz::estimate_spectrum(&a, &ident, &b, paper::WARMUP_ITERS);
            let (lo, hi) = est.chebyshev_interval(paper::MARGIN);
            // Degree-3 polynomials cannot resolve more than a few decades of
            // spread; clamp the target interval like Ifpack2's eigRatio.
            let lo = lo.max(hi / 1e4);
            Box::new(ChebyshevPrecond::new(
                Arc::clone(&a),
                paper::CHEB_PRECOND_DEGREE,
                lo,
                hi,
            ))
        }
    };
    // Basis interval for M⁻¹A, estimated with the actual preconditioner.
    let (warmup, margin) = match precond {
        Precond::Jacobi => (paper::WARMUP_ITERS_JACOBI, paper::MARGIN_JACOBI),
        Precond::Chebyshev => (paper::WARMUP_ITERS, paper::MARGIN),
    };
    let est = spcg_basis::ritz::estimate_spectrum(&a, m.as_ref(), &b, warmup);
    let (lo, hi) = est.chebyshev_interval(margin);
    let chebyshev = BasisType::Chebyshev {
        lambda_min: lo,
        lambda_max: hi,
    };
    Instance {
        name: name.to_string(),
        a,
        b,
        m,
        chebyshev,
    }
}

/// Formats an s-step result the way Table 2 prints it: the iteration count,
/// or `-` when the run diverged, stagnated, broke down, or exceeded the cap.
pub fn table2_cell(res: &SolveResult) -> String {
    if res.converged() {
        res.iterations.to_string()
    } else {
        "-".to_string()
    }
}

/// True when the s-step iteration count is *not significantly* worse than
/// the PCG reference: less than 20% overhead or less than `s` extra
/// iterations (the paper's bold-face rule).
pub fn not_significant(iters: usize, pcg_iters: usize, s: usize) -> bool {
    let overhead = iters.saturating_sub(pcg_iters);
    (overhead as f64) < 0.2 * pcg_iters as f64 || overhead < s
}

/// Parses a `--ranks R` command-line flag (ranked execution mode of the
/// fig1/table3 binaries). `None` means serial execution. A `--ranks`
/// with a missing, unparsable, or zero value aborts rather than silently
/// running the (much longer) serial configuration.
pub fn ranks_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--ranks")?;
    match args.get(i + 1).and_then(|v| v.parse().ok()) {
        Some(0) | None => {
            eprintln!("error: --ranks requires a positive integer, e.g. --ranks 4");
            std::process::exit(2);
        }
        some => some,
    }
}

/// Parses a `--threads T` command-line flag: intra-rank worker threads for
/// the parallel kernel layer (`SolveOptions::threads`). `None` means "use
/// the default", which honours the `SPCG_THREADS` environment variable. A
/// `--threads` with a missing, unparsable, or zero value aborts.
pub fn threads_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--threads")?;
    match args.get(i + 1).and_then(|v| v.parse().ok()) {
        Some(0) | None => {
            eprintln!("error: --threads requires a positive integer, e.g. --threads 4");
            std::process::exit(2);
        }
        some => some,
    }
}

/// Parses a `--no-overlap` command-line flag: run ranked solves on the
/// blocking halo-exchange schedule instead of the default overlapped one
/// (`SolveOptions::overlap(false)`). Results are bitwise identical either
/// way; the flag exists to time the two schedules against each other.
pub fn no_overlap_arg() -> bool {
    std::env::args().any(|a| a == "--no-overlap")
}

/// Parses an `--adaptive` command-line flag: extend the experiment with
/// the adaptive-s controller ([`spcg_solvers::Method::AdaptiveCaPcg`]
/// started from the *monomial* basis — no a-priori spectral knowledge)
/// alongside the paper's fixed-s methods, writing to a `*_adaptive`
/// output so the committed fixed-method baselines stay untouched.
pub fn adaptive_arg() -> bool {
    std::env::args().any(|a| a == "--adaptive")
}

/// Parses a `--trace <path>` command-line flag: trace every solve with a
/// shared [`spcg_obs::Tracer`] and write the Chrome trace-event export
/// (with the per-phase summary and merged counters spliced in) to `path`.
/// A `--trace` with a missing value aborts. Without the flag, tracing
/// still turns on when `SPCG_TRACE` is set, writing to a default name
/// under `results/`.
pub fn trace_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--trace")?;
    match args.get(i + 1) {
        Some(p) if !p.starts_with("--") => Some(PathBuf::from(p)),
        _ => {
            eprintln!("error: --trace requires a file path, e.g. --trace results/TRACE.json");
            std::process::exit(2);
        }
    }
}

/// The tracer a bin should thread through its solves: `Some` when
/// `--trace` was passed or `SPCG_TRACE` is set (cap still honours
/// `SPCG_TRACE_CAP`), `None` otherwise.
pub fn tracer_from_args(trace_path: &Option<PathBuf>) -> Option<spcg_obs::Tracer> {
    if let Some(t) = spcg_obs::Tracer::from_env() {
        return Some(t);
    }
    // Explicit --trace without SPCG_TRACE: on, still honouring the env cap.
    trace_path.as_ref().map(
        |_| match spcg_solvers::env::parsed::<usize>("SPCG_TRACE_CAP") {
            Some(cap) => spcg_obs::Tracer::with_capacity(cap),
            None => spcg_obs::Tracer::new(),
        },
    )
}

/// Writes the Chrome trace-event export of `tracer` (phase summary and
/// `counters` spliced in) to `path`, creating parent directories. Loadable
/// in Perfetto (<https://ui.perfetto.dev>) as-is.
pub fn write_trace(path: &std::path::Path, tracer: &spcg_obs::Tracer, counters: &Counters) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("cannot create trace dir");
        }
    }
    let json = tracer.export_json(Some(&counters.to_json()));
    spcg_obs::validate_chrome_trace(&json).expect("exported trace failed validation");
    std::fs::write(path, &json).expect("cannot write trace file");
    eprintln!("[trace written to {}]", path.display());
}

/// Writes experiment output under `results/` (relative to the workspace
/// root) and echoes it to stdout.
pub fn write_results(file_name: &str, content: &str) {
    print!("{content}");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("cannot create results dir");
    let path = dir.join(file_name);
    std::fs::write(&path, content).expect("cannot write results file");
    eprintln!("[results written to {}]", path.display());
}

/// `results/` directory at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Quick-mode toggle (`SPCG_QUICK=1`): subsample heavy sweeps so smoke
/// runs finish fast.
pub fn quick_mode() -> bool {
    spcg_solvers::env::flag("SPCG_QUICK", false)
}

/// A plain-text fixed-width table builder.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of columns (rows must match this arity).
    pub fn width(&self) -> usize {
        self.header.len()
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "TextTable: row arity mismatch"
        );
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson::poisson_2d;

    #[test]
    fn prepare_instance_produces_consistent_problem() {
        let inst = prepare_instance("p2d", poisson_2d(12), Precond::Jacobi);
        let p = inst.problem();
        assert_eq!(p.n(), 144);
        match &inst.chebyshev {
            BasisType::Chebyshev {
                lambda_min,
                lambda_max,
            } => {
                assert!(*lambda_min > 0.0 && lambda_max > lambda_min);
            }
            other => panic!("unexpected basis {other:?}"),
        }
    }

    #[test]
    fn chebyshev_precond_instance_builds() {
        let inst = prepare_instance("p2d", poisson_2d(10), Precond::Chebyshev);
        assert!(inst.m.name().starts_with("chebyshev"));
    }

    #[test]
    fn not_significant_rule() {
        // <20% overhead.
        assert!(not_significant(1100, 1000, 10));
        // <s extra iterations.
        assert!(not_significant(29, 22, 10));
        // Significant delay.
        assert!(!not_significant(2150, 1666, 10));
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["a", "bbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("a  bbb"));
        assert!(s.lines().count() == 3);
    }
}
