//! Distributed-vector exchange board.
//!
//! In the block-row-distributed SpMV each rank owns a contiguous chunk of
//! the vector and needs a halo of remote entries. On shared memory the
//! natural analogue is a full-length board: each rank publishes its chunk,
//! a barrier establishes visibility, and every rank reads whatever halo
//! entries its rows reference. The published/consumed word counts — what an
//! MPI halo exchange would actually send — are what the performance model
//! charges, via [`crate::Counters`] and the partition's halo analysis.
//!
//! Safety: the board hands out disjoint mutable chunks guarded by the
//! partition's ranges; cross-rank reads only happen after the barrier that
//! follows publication (callers must use [`VectorBoard::publish`], which
//! synchronizes internally).

use crate::comm::ThreadComm;
use std::sync::{Arc, RwLock};

/// A shared full-length vector that ranks publish chunks into.
pub struct VectorBoard {
    data: Arc<RwLock<Vec<f64>>>,
    offsets: Arc<Vec<usize>>,
}

impl VectorBoard {
    /// Creates a board for a vector of `n` entries partitioned at `offsets`
    /// (length `nranks + 1`, `offsets[0] == 0`, `offsets[nranks] == n`).
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(
            !offsets.is_empty() && offsets[0] == 0,
            "VectorBoard: bad offsets"
        );
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "VectorBoard: offsets must be monotone");
        }
        let n = *offsets.last().unwrap();
        VectorBoard {
            data: Arc::new(RwLock::new(vec![0.0; n])),
            offsets: Arc::new(offsets),
        }
    }

    /// Clones a handle for another rank's thread.
    pub fn handle(&self) -> VectorBoard {
        VectorBoard {
            data: Arc::clone(&self.data),
            offsets: Arc::clone(&self.offsets),
        }
    }

    /// Row range owned by `rank`.
    pub fn range(&self, rank: usize) -> (usize, usize) {
        (self.offsets[rank], self.offsets[rank + 1])
    }

    /// Publishes this rank's chunk and synchronizes: after this call returns
    /// on every rank, the full board is consistent and may be read.
    pub fn publish(&self, comm: &ThreadComm, chunk: &[f64]) {
        let (lo, hi) = self.range(comm.rank());
        assert_eq!(chunk.len(), hi - lo, "publish: chunk length mismatch");
        {
            let mut board = self.data.write().unwrap();
            board[lo..hi].copy_from_slice(chunk);
        }
        comm.barrier();
    }

    /// Reads a copy of the full board (call only after [`Self::publish`] has
    /// completed on all ranks in this round).
    pub fn snapshot(&self) -> Vec<f64> {
        self.data.read().unwrap().clone()
    }

    /// Reads selected entries (the halo indices) into `out`.
    pub fn gather(&self, indices: &[usize], out: &mut Vec<f64>) {
        let board = self.data.read().unwrap();
        out.clear();
        out.extend(indices.iter().map(|&i| board[i]));
    }

    /// Runs `f` with a read view of the full board, avoiding the copy that
    /// [`Self::snapshot`] makes.
    pub fn with_view<R>(&self, f: impl FnOnce(&[f64]) -> R) -> R {
        let board = self.data.read().unwrap();
        f(&board)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommGroup;

    #[test]
    fn publish_and_snapshot_roundtrip() {
        let g = CommGroup::new(3);
        let board = VectorBoard::new(vec![0, 2, 4, 6]);
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let chunk = vec![r as f64; 2];
                    b.publish(&c, &chunk);
                    b.snapshot()
                })
            })
            .collect();
        for h in handles {
            let snap = h.join().unwrap();
            assert_eq!(snap, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn gather_reads_halo_indices() {
        let g = CommGroup::new(2);
        let board = VectorBoard::new(vec![0, 3, 6]);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let chunk: Vec<f64> = (0..3).map(|i| (r * 3 + i) as f64 * 10.0).collect();
                    b.publish(&c, &chunk);
                    let mut halo = Vec::new();
                    // Each rank reads the other rank's boundary entry.
                    let idx = if r == 0 { vec![3] } else { vec![2] };
                    b.gather(&idx, &mut halo);
                    halo[0]
                })
            })
            .collect();
        let got: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got, vec![30.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "offsets must be monotone")]
    fn rejects_bad_offsets() {
        VectorBoard::new(vec![0, 5, 3]);
    }
}
