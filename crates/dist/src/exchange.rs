//! Distributed-vector exchange board with a split-phase halo protocol.
//!
//! In the block-row-distributed SpMV each rank owns a contiguous chunk of
//! the vector and needs a halo of remote entries. On shared memory the
//! natural analogue is a full-length board that ranks publish chunks into
//! and read halos out of. The published/consumed word counts — what an MPI
//! halo exchange would actually send — are what the performance model
//! charges, via [`crate::Counters`] and the ghost-zone analysis.
//!
//! The exchange is **split-phase**, the shared-memory analogue of
//! `MPI_Isend`/`MPI_Irecv` + `MPI_Wait`:
//!
//! * [`VectorBoard::post`] writes the rank's chunk and raises its
//!   per-rank readiness flag — the *send* side; it returns immediately
//!   (waiting only for stragglers still reading the previous round).
//! * [`VectorBoard::complete_into`] waits for the readiness flags of the
//!   **neighbour ranks a [`GatherPlan`] names** (not a full barrier) and
//!   then copies the ghost runs — the *receive completion*.
//!
//! Between the two calls the rank is free to compute on data that needs no
//! remote input — interior SpMV rows — which is exactly the
//! communication–computation overlap the ranked engine exploits. Rounds
//! are sequenced by per-rank epoch counters (`published`/`consumed` under
//! one mutex + condvar): a rank cannot overwrite its chunk for round
//! `e + 1` until every rank has finished consuming round `e`, which makes
//! the blocking and overlapped schedules touch identical data and keeps
//! message/volume counters provably unchanged (the *same* one exchange per
//! round happens either way; only the wait moves).
//!
//! Every round on a board must be exactly one `post` followed by exactly
//! one completion (`complete_into` or [`VectorBoard::complete_snapshot`])
//! on every rank — the SPMD control flow of the solvers guarantees this,
//! and the board asserts it.

use crate::backend::Comm;
use crate::fault::{FaultPlan, FaultSite, STALL};
use spcg_obs::{Phase, Track};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// Wait slice of the retry protocol when the board carries an active fault
/// plan: short, so injected stalls (which sleep [`STALL`]) are observed as
/// expired slices and the retry path actually runs.
const ARMED_WAIT_SLICE: Duration = Duration::from_millis(2);

/// First wait slice without a fault plan: a near-spin park. Clean waits
/// start here and double per expiry (up to [`CLEAN_WAIT_MAX`]), so a rank
/// whose neighbour publishes microseconds later wakes immediately instead
/// of serializing on a quarter-second timer — the adaptive spin-then-park
/// the proc backend's request/reply hub depends on.
const CLEAN_WAIT_MIN: Duration = Duration::from_micros(50);

/// Ceiling of the clean-run wait slice, and the cumulative-wait mark at
/// which a clean wait starts counting retries. Long enough that healthy
/// runs — where a neighbour is merely slow, not failed — essentially never
/// reach it, so the retry accounting stays silent.
const CLEAN_WAIT_MAX: Duration = Duration::from_millis(250);

/// Total wait budget per exchange before the board declares the run wedged
/// and panics with flag-state diagnostics. A genuine deadlock (a rank that
/// died or SPMD control-flow divergence) is the only way to spend this.
const WAIT_BUDGET: Duration = Duration::from_secs(30);

/// One contiguous source run of a [`GatherPlan`].
#[derive(Debug, Clone, Copy)]
struct Run {
    /// Rank owning the run.
    src: usize,
    /// First board index of the run.
    start: usize,
    /// Length in words.
    len: usize,
}

/// A precomputed halo-gather plan: the ghost indices of one rank,
/// compressed into maximal contiguous runs (each run within a single
/// source rank's range), plus the sorted set of source ranks whose
/// readiness the completion must wait for.
///
/// Built once per ghost zone via [`VectorBoard::plan`] and reused every
/// iteration — the per-call index arithmetic and allocation churn of an
/// elementwise gather happen once, at plan-build time. The destination
/// layout of [`VectorBoard::complete_into`] follows the index order given
/// to [`VectorBoard::plan`], so a ghost-zone's extended-vector layout is
/// preserved run by run.
#[derive(Debug, Clone)]
pub struct GatherPlan {
    runs: Vec<Run>,
    src_ranks: Vec<usize>,
    total: usize,
}

impl GatherPlan {
    /// Compresses `indices` (global vector positions) into a plan against
    /// the partition described by `offsets` (length `nranks + 1`) — the
    /// shared constructor every [`crate::backend::Exchange`] backend's
    /// `plan` delegates to, so thread and proc solves gather identically.
    ///
    /// # Panics
    /// Panics if an index is out of the partition's range.
    pub fn build(offsets: &[usize], indices: &[usize]) -> GatherPlan {
        let n = *offsets.last().unwrap();
        let owner = |idx: usize| offsets.partition_point(|&o| o <= idx) - 1;
        let mut runs: Vec<Run> = Vec::new();
        for &idx in indices {
            assert!(idx < n, "GatherPlan: index {idx} out of range");
            let src = owner(idx);
            match runs.last_mut() {
                Some(run) if run.start + run.len == idx && run.src == src => run.len += 1,
                _ => runs.push(Run {
                    src,
                    start: idx,
                    len: 1,
                }),
            }
        }
        let mut src_ranks: Vec<usize> = runs.iter().map(|r| r.src).collect();
        src_ranks.sort_unstable();
        src_ranks.dedup();
        GatherPlan {
            runs,
            src_ranks,
            total: indices.len(),
        }
    }

    /// Total words the plan gathers (the halo volume of one exchange of
    /// one vector — the number [`crate::Counters::record_halo_exchange`]
    /// is charged with).
    pub fn words(&self) -> usize {
        self.total
    }

    /// Number of contiguous runs the indices compressed into.
    pub fn n_runs(&self) -> usize {
        self.runs.len()
    }

    /// Sorted, deduplicated ranks this plan reads from — the neighbour set
    /// of the halo exchange.
    pub fn src_ranks(&self) -> &[usize] {
        &self.src_ranks
    }

    /// True if the plan gathers nothing (single-rank runs).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Copies the plan's runs out of a full-length `board` slice into
    /// `out`, in plan order — the gather kernel shared by every backend's
    /// completion path.
    ///
    /// # Panics
    /// Panics if `out.len() != self.words()` or a run exceeds `board`.
    pub fn gather(&self, board: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.total, "gather: out length mismatch");
        let mut pos = 0;
        for run in &self.runs {
            out[pos..pos + run.len].copy_from_slice(&board[run.start..run.start + run.len]);
            pos += run.len;
        }
    }
}

/// Per-rank round flags of a board: `published[r]` is the round rank `r`
/// has posted, `consumed[r]` the round it has finished reading.
struct Flags {
    state: Mutex<FlagState>,
    cvar: Condvar,
}

struct FlagState {
    published: Vec<u64>,
    consumed: Vec<u64>,
}

/// A shared full-length vector that ranks publish chunks into through the
/// split-phase protocol described at the module level.
pub struct VectorBoard {
    data: Arc<RwLock<Vec<f64>>>,
    offsets: Arc<Vec<usize>>,
    flags: Arc<Flags>,
    /// Fault-injection plan, when this board participates in one.
    faults: Option<FaultPlan>,
    /// Decorrelation salt mixed into the plan's decisions, so the two
    /// boards of a ranked solve draw distinct injection streams.
    salt: u64,
    /// Expired wait slices across all ranks — the retry protocol's
    /// diagnostic odometer. Timing-dependent; never part of [`crate::Counters`].
    retries: Arc<AtomicU64>,
}

impl VectorBoard {
    /// Creates a board for a vector of `n` entries partitioned at `offsets`
    /// (length `nranks + 1`, `offsets[0] == 0`, `offsets[nranks] == n`).
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(
            offsets.len() >= 2 && offsets[0] == 0,
            "VectorBoard: bad offsets"
        );
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "VectorBoard: offsets must be monotone");
        }
        let n = *offsets.last().unwrap();
        let nranks = offsets.len() - 1;
        VectorBoard {
            data: Arc::new(RwLock::new(vec![0.0; n])),
            offsets: Arc::new(offsets),
            flags: Arc::new(Flags {
                state: Mutex::new(FlagState {
                    published: vec![0; nranks],
                    consumed: vec![0; nranks],
                }),
                cvar: Condvar::new(),
            }),
            faults: None,
            salt: 0,
            retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Attaches a fault plan to the board (`None` detaches). `salt`
    /// decorrelates this board's injection stream from other boards
    /// sharing the plan (give each board of a solve a distinct salt).
    /// With an inactive plan the board behaves exactly like an unfaulted
    /// one, except that its wait slices shorten to the armed setting.
    pub fn with_faults(mut self, plan: Option<FaultPlan>, salt: u64) -> Self {
        self.faults = plan;
        self.salt = salt;
        self
    }

    /// Expired wait slices observed so far across all ranks of this board
    /// — nonzero only when some completion or post actually had to wait
    /// past a slice (a stalled neighbour). Timing-dependent diagnostics;
    /// results and [`crate::Counters`] never depend on it.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Clones a handle for another rank's thread.
    pub fn handle(&self) -> VectorBoard {
        VectorBoard {
            data: Arc::clone(&self.data),
            offsets: Arc::clone(&self.offsets),
            flags: Arc::clone(&self.flags),
            faults: self.faults.clone(),
            salt: self.salt,
            retries: Arc::clone(&self.retries),
        }
    }

    /// Row range owned by `rank`.
    pub fn range(&self, rank: usize) -> (usize, usize) {
        (self.offsets[rank], self.offsets[rank + 1])
    }

    /// The partition offsets (length `nranks + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Compresses `indices` (board positions, e.g. a ghost zone's global
    /// ghost indices) into a reusable [`GatherPlan`]. Runs never cross a
    /// rank boundary, so each run has a single source whose readiness flag
    /// gates it.
    ///
    /// # Panics
    /// Panics if an index is out of the board's range.
    pub fn plan(&self, indices: &[usize]) -> GatherPlan {
        GatherPlan::build(&self.offsets, indices)
    }

    /// Posts this rank's chunk for the next round: waits until every rank
    /// has consumed the previous round (so no reader races the overwrite),
    /// writes the chunk, and raises this rank's readiness flag. Returns
    /// without waiting for any other rank's data — compute on interior
    /// rows between this and the completion call.
    ///
    /// # Panics
    /// Panics on a chunk-length mismatch or if the previous round was
    /// never completed on this rank.
    pub fn post(&self, comm: &dyn Comm, chunk: &[f64]) {
        self.post_traced(comm, chunk, None);
    }

    /// [`VectorBoard::post`] wrapped in an [`ExchangePost`](Phase) span
    /// when a trace track is given. Instrumentation only — the protocol is
    /// identical with `None`.
    pub fn post_traced(&self, comm: &dyn Comm, chunk: &[f64], track: Option<&Track>) {
        let _span = spcg_obs::span(track, Phase::ExchangePost);
        let me = comm.rank();
        let (lo, hi) = self.range(me);
        assert_eq!(chunk.len(), hi - lo, "post: chunk length mismatch");
        let faults = self.injector(comm);
        let round = {
            let mut st = self.flags.state.lock().unwrap();
            assert_eq!(
                st.consumed[me], st.published[me],
                "post: previous round not completed on rank {me}"
            );
            let round = st.published[me] + 1;
            st = self.wait_while(
                st,
                |st| !st.consumed.iter().all(|&c| c + 1 >= round),
                track,
                "post",
                me,
            );
            drop(st);
            round
        };
        let poisoned = faults
            .map(|p| p.fire(FaultSite::PoisonHalo, self.salt, me, round))
            .unwrap_or(false);
        {
            let mut board = self.data.write().unwrap();
            board[lo..hi].copy_from_slice(chunk);
            if poisoned && hi > lo {
                // Corrupt the board copy only — the owner's local data
                // stays clean, so only gathered halos see the NaN.
                board[hi - 1] = f64::NAN;
            }
        }
        if faults
            .map(|p| p.fire(FaultSite::PostStall, self.salt, me, round))
            .unwrap_or(false)
        {
            // Hold the readiness flag back: neighbours completing this
            // round see the stall and exercise the retry path.
            std::thread::sleep(STALL);
        }
        {
            let mut st = self.flags.state.lock().unwrap();
            st.published[me] = round;
            self.flags.cvar.notify_all();
        }
        if faults
            .map(|p| p.fire(FaultSite::PublishDuplicate, self.salt, me, round))
            .unwrap_or(false)
        {
            // A redundant second publish of the identical payload (poison
            // included) plus a spurious wakeup — the protocol must absorb
            // the duplicate without corrupting the round.
            let mut board = self.data.write().unwrap();
            board[lo..hi].copy_from_slice(chunk);
            if poisoned && hi > lo {
                board[hi - 1] = f64::NAN;
            }
            drop(board);
            self.flags.cvar.notify_all();
        }
    }

    /// Completes the round this rank posted: waits for the readiness flags
    /// of the plan's source ranks only, then copies the plan's runs into
    /// `out` (in plan order — the ghost segment of an extended vector).
    ///
    /// # Panics
    /// Panics if `out.len() != plan.words()` or this rank has not posted
    /// the round it is completing.
    pub fn complete_into(&self, comm: &dyn Comm, plan: &GatherPlan, out: &mut [f64]) {
        self.complete_into_traced(comm, plan, out, None);
    }

    /// [`VectorBoard::complete_into`] wrapped in an
    /// [`ExchangeWait`](Phase) span when a trace track is given — the span
    /// covers both the wait on neighbour readiness and the gather copy.
    pub fn complete_into_traced(
        &self,
        comm: &dyn Comm,
        plan: &GatherPlan,
        out: &mut [f64],
        track: Option<&Track>,
    ) {
        let _span = spcg_obs::span(track, Phase::ExchangeWait);
        assert_eq!(out.len(), plan.total, "complete_into: out length mismatch");
        let me = comm.rank();
        let round = self.begin_complete(comm, plan.src_ranks.iter().copied(), track);
        {
            let board = self.data.read().unwrap();
            let mut pos = 0;
            for run in &plan.runs {
                out[pos..pos + run.len].copy_from_slice(&board[run.start..run.start + run.len]);
                pos += run.len;
            }
        }
        self.end_complete(me, round);
    }

    /// Completes the round with a copy of the **full** board — the
    /// all-neighbour variant used by the replicated (non-pointwise
    /// preconditioner) fallback paths, which need the assembled vector.
    ///
    /// # Panics
    /// Panics if this rank has not posted the round it is completing.
    pub fn complete_snapshot(&self, comm: &dyn Comm) -> Vec<f64> {
        self.complete_snapshot_traced(comm, None)
    }

    /// [`VectorBoard::complete_snapshot`] wrapped in an
    /// [`ExchangeWait`](Phase) span when a trace track is given.
    pub fn complete_snapshot_traced(&self, comm: &dyn Comm, track: Option<&Track>) -> Vec<f64> {
        let _span = spcg_obs::span(track, Phase::ExchangeWait);
        let me = comm.rank();
        let round = self.begin_complete(comm, 0..comm.nranks(), track);
        let full = self.data.read().unwrap().clone();
        self.end_complete(me, round);
        full
    }

    /// Waits until every rank in `sources` has published this rank's
    /// current round, returning the round number.
    fn begin_complete(
        &self,
        comm: &dyn Comm,
        sources: impl Iterator<Item = usize> + Clone,
        track: Option<&Track>,
    ) -> u64 {
        let me = comm.rank();
        let round = {
            let st = self.flags.state.lock().unwrap();
            let round = st.published[me];
            assert_eq!(
                st.consumed[me] + 1,
                round,
                "complete: rank {me} has not posted this round"
            );
            round
        };
        if self
            .injector(comm)
            .map(|p| p.fire(FaultSite::CompleteStall, self.salt, me, round))
            .unwrap_or(false)
        {
            // Consumer-side stall: this rank is late to read, which holds
            // every neighbour's *next* post back.
            std::thread::sleep(STALL);
        }
        let st = self.flags.state.lock().unwrap();
        let st = self.wait_while(
            st,
            |st| !sources.clone().all(|src| st.published[src] >= round),
            track,
            "complete",
            me,
        );
        drop(st);
        round
    }

    /// The board's fault plan, when it is active and the run actually has
    /// neighbours — single-rank boards never inject (there is nothing
    /// distributed to fail), preserving ranks=1-versus-serial parity.
    fn injector(&self, comm: &dyn Comm) -> Option<&FaultPlan> {
        self.faults
            .as_ref()
            .filter(|p| p.active() && comm.nranks() > 1)
    }

    /// Timeout/retry wait loop shared by the post and completion sides:
    /// waits in slices while `pending` holds, and panics with flag-state
    /// diagnostics once [`WAIT_BUDGET`] is spent — bounded waiting instead
    /// of a silent wedge.
    ///
    /// With a fault plan attached, every expired [`ARMED_WAIT_SLICE`]
    /// counts as a retry (recorded as a [`Retry`](Phase) span) — injected
    /// stalls outlast several slices, so the retry path visibly engages.
    /// Without one, the slice is adaptive: it starts near a spin
    /// ([`CLEAN_WAIT_MIN`]) and doubles per expiry up to
    /// [`CLEAN_WAIT_MAX`], and a retry is counted only each time the
    /// *cumulative* wait crosses a [`CLEAN_WAIT_MAX`] mark — so healthy
    /// runs stay retry-silent while waking at microsecond latency.
    fn wait_while<'a>(
        &self,
        mut st: MutexGuard<'a, FlagState>,
        pending: impl Fn(&FlagState) -> bool,
        track: Option<&Track>,
        what: &str,
        me: usize,
    ) -> MutexGuard<'a, FlagState> {
        let armed = self.faults.is_some();
        let mut slice = if armed {
            ARMED_WAIT_SLICE
        } else {
            CLEAN_WAIT_MIN
        };
        let mut waited = Duration::ZERO;
        let mut retry_mark = CLEAN_WAIT_MAX;
        while pending(&st) {
            let (next, timeout) = self.flags.cvar.wait_timeout(st, slice).unwrap();
            st = next;
            if timeout.timed_out() && pending(&st) {
                waited += slice;
                if armed {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let _retry = spcg_obs::span(track, Phase::Retry);
                } else {
                    slice = (slice * 2).min(CLEAN_WAIT_MAX);
                    while waited >= retry_mark {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        let _retry = spcg_obs::span(track, Phase::Retry);
                        retry_mark += CLEAN_WAIT_MAX;
                    }
                }
                assert!(
                    waited < WAIT_BUDGET,
                    "{what}: rank {me} wedged after {waited:?} \
                     (published {:?}, consumed {:?})",
                    st.published,
                    st.consumed,
                );
            }
        }
        st
    }

    /// Marks this rank's round consumed, releasing the next `post`.
    fn end_complete(&self, me: usize, round: u64) {
        let mut st = self.flags.state.lock().unwrap();
        st.consumed[me] = round;
        self.flags.cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommGroup;

    #[test]
    fn post_and_complete_snapshot_roundtrip() {
        let g = CommGroup::new(3);
        let board = VectorBoard::new(vec![0, 2, 4, 6]);
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let chunk = vec![r as f64; 2];
                    b.post(&c, &chunk);
                    b.complete_snapshot(&c)
                })
            })
            .collect();
        for h in handles {
            let snap = h.join().unwrap();
            assert_eq!(snap, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn plan_compresses_contiguous_indices_into_runs() {
        let board = VectorBoard::new(vec![0, 4, 8, 12]);
        // BFS-distance-grouped ghosts of a middle rank: two one-sided
        // neighbours, then the next layer out.
        let plan = board.plan(&[3, 8, 2, 9]);
        assert_eq!(plan.words(), 4);
        assert_eq!(plan.n_runs(), 4); // 3 | 8 | 2 | 9 (order preserved)
        assert_eq!(plan.src_ranks(), &[0, 2]);
        // A sorted contiguous block compresses maximally and never crosses
        // the rank boundary at 8.
        let plan = board.plan(&[5, 6, 7, 8, 9]);
        assert_eq!(plan.n_runs(), 2);
        assert_eq!(plan.src_ranks(), &[1, 2]);
        assert!(!plan.is_empty());
        assert!(board.plan(&[]).is_empty());
    }

    #[test]
    fn complete_into_gathers_plan_order() {
        let g = CommGroup::new(2);
        let board = VectorBoard::new(vec![0, 3, 6]);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let chunk: Vec<f64> = (0..3).map(|i| (r * 3 + i) as f64 * 10.0).collect();
                    // Each rank pulls the other rank's boundary entry.
                    let plan = b.plan(if r == 0 { &[3] } else { &[2] });
                    b.post(&c, &chunk);
                    let mut halo = [0.0];
                    b.complete_into(&c, &plan, &mut halo);
                    halo[0]
                })
            })
            .collect();
        let got: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got, vec![30.0, 20.0]);
    }

    /// The epoch flags must keep a fast rank from overwriting its chunk
    /// while a slow rank still reads the previous round, for many rounds.
    #[test]
    fn rounds_are_isolated_across_ranks() {
        let g = CommGroup::new(3);
        let board = VectorBoard::new(vec![0, 2, 4, 6]);
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    // Every rank gathers both remote chunks; plan reuse
                    // across rounds is the satellite's allocation fix.
                    let ghosts: Vec<usize> = (0..6).filter(|i| i / 2 != r).collect();
                    let plan = b.plan(&ghosts);
                    let mut out = vec![0.0; 4];
                    for round in 0..100 {
                        let val = (round * 3 + r) as f64;
                        b.post(&c, &[val, val]);
                        // Rank-dependent delay to shake out races.
                        if (round + r) % 3 == 0 {
                            std::thread::yield_now();
                        }
                        b.complete_into(&c, &plan, &mut out);
                        let others: Vec<usize> = (0..3).filter(|&q| q != r).collect();
                        let expect: Vec<f64> = others
                            .iter()
                            .flat_map(|&q| {
                                let v = (round * 3 + q) as f64;
                                [v, v]
                            })
                            .collect();
                        assert_eq!(out, expect, "rank {r} round {round}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Overlapped schedule: one rank computes "interior work" between post
    /// and complete while the others lag; the data read at completion must
    /// still be the current round's.
    #[test]
    fn overlap_window_reads_current_round() {
        let g = CommGroup::new(2);
        let board = VectorBoard::new(vec![0, 1, 2]);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let plan = b.plan(&[1 - r]);
                    let mut ghost = [0.0];
                    let mut acc = 0.0;
                    for round in 0..200 {
                        b.post(&c, &[(round * 2 + r) as f64]);
                        // Interior compute stand-in of rank-skewed length.
                        acc += (0..(r + 1) * 40).map(|i| i as f64).sum::<f64>();
                        b.complete_into(&c, &plan, &mut ghost);
                        assert_eq!(ghost[0], (round * 2 + (1 - r)) as f64);
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "offsets must be monotone")]
    fn rejects_bad_offsets() {
        VectorBoard::new(vec![0, 5, 3]);
    }

    /// A board with stall-only faults at rate 1 must still deliver every
    /// round's data exactly — stalls move waits around, never values.
    #[test]
    fn stall_faults_preserve_exchange_data() {
        let g = CommGroup::new(2);
        let plan =
            FaultPlan::new(7, 1.0).with_sites(&[FaultSite::PostStall, FaultSite::CompleteStall]);
        let board = VectorBoard::new(vec![0, 2, 4]).with_faults(Some(plan.clone()), 0);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let gather = b.plan(if r == 0 { &[2, 3] } else { &[0, 1] });
                    let mut halo = vec![0.0; 2];
                    for round in 0..8 {
                        let v = (round * 2 + r) as f64;
                        b.post(&c, &[v, v]);
                        b.complete_into(&c, &gather, &mut halo);
                        let other = (round * 2 + (1 - r)) as f64;
                        assert_eq!(halo, vec![other, other], "rank {r} round {round}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(plan.counts().site(FaultSite::PostStall) > 0);
        assert!(plan.counts().site(FaultSite::CompleteStall) > 0);
        assert_eq!(plan.counts().site(FaultSite::PoisonHalo), 0);
    }

    /// A rank that posts late is absorbed by the timeout/retry protocol:
    /// the waiting rank spins expired slices (visible via `retries()`)
    /// and still gathers the correct data.
    #[test]
    fn late_post_is_absorbed_with_retries() {
        let g = CommGroup::new(2);
        // An inactive plan still arms the short wait slice.
        let plan = FaultPlan::new(1, 0.0);
        let board = VectorBoard::new(vec![0, 1, 2]).with_faults(Some(plan), 0);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    if r == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                    let gather = b.plan(&[1 - r]);
                    let mut halo = [0.0];
                    b.post(&c, &[r as f64 + 10.0]);
                    b.complete_into(&c, &gather, &mut halo);
                    assert_eq!(halo[0], (1 - r) as f64 + 10.0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(board.retries() > 0, "the waiting rank should have retried");
    }

    /// Poisoned halos corrupt only the board copy: the gathering side
    /// sees NaN, the owner's local chunk stays clean.
    #[test]
    fn poison_halo_corrupts_gathered_copy_only() {
        let g = CommGroup::new(2);
        let plan = FaultPlan::new(3, 1.0).with_sites(&[FaultSite::PoisonHalo]);
        let board = VectorBoard::new(vec![0, 2, 4]).with_faults(Some(plan.clone()), 0);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    // Each rank gathers the other's *last* entry — the
                    // poisoned position.
                    let gather = b.plan(if r == 0 { &[3] } else { &[1] });
                    let chunk = [r as f64, r as f64 + 0.5];
                    let mut halo = [0.0];
                    b.post(&c, &chunk);
                    b.complete_into(&c, &gather, &mut halo);
                    assert!(halo[0].is_nan(), "rank {r} should gather poison");
                    // The local chunk the rank posted is untouched.
                    assert_eq!(chunk, [r as f64, r as f64 + 0.5]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(plan.counts().site(FaultSite::PoisonHalo), 2);
    }

    /// Duplicate publishes are idempotent: rounds keep their isolation
    /// and values under rate-1 duplication.
    #[test]
    fn duplicate_publish_is_idempotent() {
        let g = CommGroup::new(2);
        let plan = FaultPlan::new(11, 1.0).with_sites(&[FaultSite::PublishDuplicate]);
        let board = VectorBoard::new(vec![0, 1, 2]).with_faults(Some(plan.clone()), 0);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let gather = b.plan(&[1 - r]);
                    let mut halo = [0.0];
                    for round in 0..12 {
                        b.post(&c, &[(round * 2 + r) as f64]);
                        b.complete_into(&c, &gather, &mut halo);
                        assert_eq!(halo[0], (round * 2 + (1 - r)) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(plan.counts().site(FaultSite::PublishDuplicate) > 0);
    }

    /// Single-rank boards never inject, whatever the plan says.
    #[test]
    fn single_rank_boards_do_not_inject() {
        let g = CommGroup::new(1);
        let c = g.rank_comm(0);
        let plan = FaultPlan::new(5, 1.0);
        let board = VectorBoard::new(vec![0, 3]).with_faults(Some(plan.clone()), 0);
        board.post(&c, &[1.0, 2.0, 3.0]);
        let snap = board.complete_snapshot(&c);
        assert_eq!(snap, vec![1.0, 2.0, 3.0]);
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    #[should_panic(expected = "has not posted this round")]
    fn complete_without_post_is_rejected() {
        let g = CommGroup::new(1);
        let c = g.rank_comm(0);
        let board = VectorBoard::new(vec![0, 2]);
        let plan = board.plan(&[]);
        board.complete_into(&c, &plan, &mut []);
    }
}
