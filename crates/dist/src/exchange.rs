//! Distributed-vector exchange board with a split-phase halo protocol.
//!
//! In the block-row-distributed SpMV each rank owns a contiguous chunk of
//! the vector and needs a halo of remote entries. On shared memory the
//! natural analogue is a full-length board that ranks publish chunks into
//! and read halos out of. The published/consumed word counts — what an MPI
//! halo exchange would actually send — are what the performance model
//! charges, via [`crate::Counters`] and the ghost-zone analysis.
//!
//! The exchange is **split-phase**, the shared-memory analogue of
//! `MPI_Isend`/`MPI_Irecv` + `MPI_Wait`:
//!
//! * [`VectorBoard::post`] writes the rank's chunk and raises its
//!   per-rank readiness flag — the *send* side; it returns immediately
//!   (waiting only for stragglers still reading the previous round).
//! * [`VectorBoard::complete_into`] waits for the readiness flags of the
//!   **neighbour ranks a [`GatherPlan`] names** (not a full barrier) and
//!   then copies the ghost runs — the *receive completion*.
//!
//! Between the two calls the rank is free to compute on data that needs no
//! remote input — interior SpMV rows — which is exactly the
//! communication–computation overlap the ranked engine exploits. Rounds
//! are sequenced by per-rank epoch counters (`published`/`consumed` under
//! one mutex + condvar): a rank cannot overwrite its chunk for round
//! `e + 1` until every rank has finished consuming round `e`, which makes
//! the blocking and overlapped schedules touch identical data and keeps
//! message/volume counters provably unchanged (the *same* one exchange per
//! round happens either way; only the wait moves).
//!
//! Every round on a board must be exactly one `post` followed by exactly
//! one completion (`complete_into` or [`VectorBoard::complete_snapshot`])
//! on every rank — the SPMD control flow of the solvers guarantees this,
//! and the board asserts it.

use crate::comm::ThreadComm;
use spcg_obs::{Phase, Track};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// One contiguous source run of a [`GatherPlan`].
#[derive(Debug, Clone, Copy)]
struct Run {
    /// Rank owning the run.
    src: usize,
    /// First board index of the run.
    start: usize,
    /// Length in words.
    len: usize,
}

/// A precomputed halo-gather plan: the ghost indices of one rank,
/// compressed into maximal contiguous runs (each run within a single
/// source rank's range), plus the sorted set of source ranks whose
/// readiness the completion must wait for.
///
/// Built once per ghost zone via [`VectorBoard::plan`] and reused every
/// iteration — the per-call index arithmetic and allocation churn of an
/// elementwise gather happen once, at plan-build time. The destination
/// layout of [`VectorBoard::complete_into`] follows the index order given
/// to [`VectorBoard::plan`], so a ghost-zone's extended-vector layout is
/// preserved run by run.
#[derive(Debug, Clone)]
pub struct GatherPlan {
    runs: Vec<Run>,
    src_ranks: Vec<usize>,
    total: usize,
}

impl GatherPlan {
    /// Total words the plan gathers (the halo volume of one exchange of
    /// one vector — the number [`crate::Counters::record_halo_exchange`]
    /// is charged with).
    pub fn words(&self) -> usize {
        self.total
    }

    /// Number of contiguous runs the indices compressed into.
    pub fn n_runs(&self) -> usize {
        self.runs.len()
    }

    /// Sorted, deduplicated ranks this plan reads from — the neighbour set
    /// of the halo exchange.
    pub fn src_ranks(&self) -> &[usize] {
        &self.src_ranks
    }

    /// True if the plan gathers nothing (single-rank runs).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Per-rank round flags of a board: `published[r]` is the round rank `r`
/// has posted, `consumed[r]` the round it has finished reading.
struct Flags {
    state: Mutex<FlagState>,
    cvar: Condvar,
}

struct FlagState {
    published: Vec<u64>,
    consumed: Vec<u64>,
}

/// A shared full-length vector that ranks publish chunks into through the
/// split-phase protocol described at the module level.
pub struct VectorBoard {
    data: Arc<RwLock<Vec<f64>>>,
    offsets: Arc<Vec<usize>>,
    flags: Arc<Flags>,
}

impl VectorBoard {
    /// Creates a board for a vector of `n` entries partitioned at `offsets`
    /// (length `nranks + 1`, `offsets[0] == 0`, `offsets[nranks] == n`).
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(
            offsets.len() >= 2 && offsets[0] == 0,
            "VectorBoard: bad offsets"
        );
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "VectorBoard: offsets must be monotone");
        }
        let n = *offsets.last().unwrap();
        let nranks = offsets.len() - 1;
        VectorBoard {
            data: Arc::new(RwLock::new(vec![0.0; n])),
            offsets: Arc::new(offsets),
            flags: Arc::new(Flags {
                state: Mutex::new(FlagState {
                    published: vec![0; nranks],
                    consumed: vec![0; nranks],
                }),
                cvar: Condvar::new(),
            }),
        }
    }

    /// Clones a handle for another rank's thread.
    pub fn handle(&self) -> VectorBoard {
        VectorBoard {
            data: Arc::clone(&self.data),
            offsets: Arc::clone(&self.offsets),
            flags: Arc::clone(&self.flags),
        }
    }

    /// Row range owned by `rank`.
    pub fn range(&self, rank: usize) -> (usize, usize) {
        (self.offsets[rank], self.offsets[rank + 1])
    }

    /// Compresses `indices` (board positions, e.g. a ghost zone's global
    /// ghost indices) into a reusable [`GatherPlan`]. Runs never cross a
    /// rank boundary, so each run has a single source whose readiness flag
    /// gates it.
    ///
    /// # Panics
    /// Panics if an index is out of the board's range.
    pub fn plan(&self, indices: &[usize]) -> GatherPlan {
        let n = *self.offsets.last().unwrap();
        let owner = |idx: usize| self.offsets.partition_point(|&o| o <= idx) - 1;
        let mut runs: Vec<Run> = Vec::new();
        for &idx in indices {
            assert!(idx < n, "GatherPlan: index {idx} out of range");
            let src = owner(idx);
            match runs.last_mut() {
                Some(run) if run.start + run.len == idx && run.src == src => run.len += 1,
                _ => runs.push(Run {
                    src,
                    start: idx,
                    len: 1,
                }),
            }
        }
        let mut src_ranks: Vec<usize> = runs.iter().map(|r| r.src).collect();
        src_ranks.sort_unstable();
        src_ranks.dedup();
        GatherPlan {
            runs,
            src_ranks,
            total: indices.len(),
        }
    }

    /// Posts this rank's chunk for the next round: waits until every rank
    /// has consumed the previous round (so no reader races the overwrite),
    /// writes the chunk, and raises this rank's readiness flag. Returns
    /// without waiting for any other rank's data — compute on interior
    /// rows between this and the completion call.
    ///
    /// # Panics
    /// Panics on a chunk-length mismatch or if the previous round was
    /// never completed on this rank.
    pub fn post(&self, comm: &ThreadComm, chunk: &[f64]) {
        self.post_traced(comm, chunk, None);
    }

    /// [`VectorBoard::post`] wrapped in an [`ExchangePost`](Phase) span
    /// when a trace track is given. Instrumentation only — the protocol is
    /// identical with `None`.
    pub fn post_traced(&self, comm: &ThreadComm, chunk: &[f64], track: Option<&Track>) {
        let _span = spcg_obs::span(track, Phase::ExchangePost);
        let me = comm.rank();
        let (lo, hi) = self.range(me);
        assert_eq!(chunk.len(), hi - lo, "post: chunk length mismatch");
        let round = {
            let mut st = self.flags.state.lock().unwrap();
            assert_eq!(
                st.consumed[me], st.published[me],
                "post: previous round not completed on rank {me}"
            );
            let round = st.published[me] + 1;
            while !st.consumed.iter().all(|&c| c + 1 >= round) {
                st = self.flags.cvar.wait(st).unwrap();
            }
            round
        };
        {
            let mut board = self.data.write().unwrap();
            board[lo..hi].copy_from_slice(chunk);
        }
        let mut st = self.flags.state.lock().unwrap();
        st.published[me] = round;
        self.flags.cvar.notify_all();
    }

    /// Completes the round this rank posted: waits for the readiness flags
    /// of the plan's source ranks only, then copies the plan's runs into
    /// `out` (in plan order — the ghost segment of an extended vector).
    ///
    /// # Panics
    /// Panics if `out.len() != plan.words()` or this rank has not posted
    /// the round it is completing.
    pub fn complete_into(&self, comm: &ThreadComm, plan: &GatherPlan, out: &mut [f64]) {
        self.complete_into_traced(comm, plan, out, None);
    }

    /// [`VectorBoard::complete_into`] wrapped in an
    /// [`ExchangeWait`](Phase) span when a trace track is given — the span
    /// covers both the wait on neighbour readiness and the gather copy.
    pub fn complete_into_traced(
        &self,
        comm: &ThreadComm,
        plan: &GatherPlan,
        out: &mut [f64],
        track: Option<&Track>,
    ) {
        let _span = spcg_obs::span(track, Phase::ExchangeWait);
        assert_eq!(out.len(), plan.total, "complete_into: out length mismatch");
        let me = comm.rank();
        let round = self.begin_complete(me, plan.src_ranks.iter().copied());
        {
            let board = self.data.read().unwrap();
            let mut pos = 0;
            for run in &plan.runs {
                out[pos..pos + run.len].copy_from_slice(&board[run.start..run.start + run.len]);
                pos += run.len;
            }
        }
        self.end_complete(me, round);
    }

    /// Completes the round with a copy of the **full** board — the
    /// all-neighbour variant used by the replicated (non-pointwise
    /// preconditioner) fallback paths, which need the assembled vector.
    ///
    /// # Panics
    /// Panics if this rank has not posted the round it is completing.
    pub fn complete_snapshot(&self, comm: &ThreadComm) -> Vec<f64> {
        self.complete_snapshot_traced(comm, None)
    }

    /// [`VectorBoard::complete_snapshot`] wrapped in an
    /// [`ExchangeWait`](Phase) span when a trace track is given.
    pub fn complete_snapshot_traced(&self, comm: &ThreadComm, track: Option<&Track>) -> Vec<f64> {
        let _span = spcg_obs::span(track, Phase::ExchangeWait);
        let me = comm.rank();
        let round = self.begin_complete(me, 0..comm.nranks());
        let full = self.data.read().unwrap().clone();
        self.end_complete(me, round);
        full
    }

    /// Waits until every rank in `sources` has published this rank's
    /// current round, returning the round number.
    fn begin_complete(&self, me: usize, sources: impl Iterator<Item = usize> + Clone) -> u64 {
        let mut st = self.flags.state.lock().unwrap();
        let round = st.published[me];
        assert_eq!(
            st.consumed[me] + 1,
            round,
            "complete: rank {me} has not posted this round"
        );
        while !sources.clone().all(|src| st.published[src] >= round) {
            st = self.flags.cvar.wait(st).unwrap();
        }
        round
    }

    /// Marks this rank's round consumed, releasing the next `post`.
    fn end_complete(&self, me: usize, round: u64) {
        let mut st = self.flags.state.lock().unwrap();
        st.consumed[me] = round;
        self.flags.cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommGroup;

    #[test]
    fn post_and_complete_snapshot_roundtrip() {
        let g = CommGroup::new(3);
        let board = VectorBoard::new(vec![0, 2, 4, 6]);
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let chunk = vec![r as f64; 2];
                    b.post(&c, &chunk);
                    b.complete_snapshot(&c)
                })
            })
            .collect();
        for h in handles {
            let snap = h.join().unwrap();
            assert_eq!(snap, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn plan_compresses_contiguous_indices_into_runs() {
        let board = VectorBoard::new(vec![0, 4, 8, 12]);
        // BFS-distance-grouped ghosts of a middle rank: two one-sided
        // neighbours, then the next layer out.
        let plan = board.plan(&[3, 8, 2, 9]);
        assert_eq!(plan.words(), 4);
        assert_eq!(plan.n_runs(), 4); // 3 | 8 | 2 | 9 (order preserved)
        assert_eq!(plan.src_ranks(), &[0, 2]);
        // A sorted contiguous block compresses maximally and never crosses
        // the rank boundary at 8.
        let plan = board.plan(&[5, 6, 7, 8, 9]);
        assert_eq!(plan.n_runs(), 2);
        assert_eq!(plan.src_ranks(), &[1, 2]);
        assert!(!plan.is_empty());
        assert!(board.plan(&[]).is_empty());
    }

    #[test]
    fn complete_into_gathers_plan_order() {
        let g = CommGroup::new(2);
        let board = VectorBoard::new(vec![0, 3, 6]);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let chunk: Vec<f64> = (0..3).map(|i| (r * 3 + i) as f64 * 10.0).collect();
                    // Each rank pulls the other rank's boundary entry.
                    let plan = b.plan(if r == 0 { &[3] } else { &[2] });
                    b.post(&c, &chunk);
                    let mut halo = [0.0];
                    b.complete_into(&c, &plan, &mut halo);
                    halo[0]
                })
            })
            .collect();
        let got: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got, vec![30.0, 20.0]);
    }

    /// The epoch flags must keep a fast rank from overwriting its chunk
    /// while a slow rank still reads the previous round, for many rounds.
    #[test]
    fn rounds_are_isolated_across_ranks() {
        let g = CommGroup::new(3);
        let board = VectorBoard::new(vec![0, 2, 4, 6]);
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    // Every rank gathers both remote chunks; plan reuse
                    // across rounds is the satellite's allocation fix.
                    let ghosts: Vec<usize> = (0..6).filter(|i| i / 2 != r).collect();
                    let plan = b.plan(&ghosts);
                    let mut out = vec![0.0; 4];
                    for round in 0..100 {
                        let val = (round * 3 + r) as f64;
                        b.post(&c, &[val, val]);
                        // Rank-dependent delay to shake out races.
                        if (round + r) % 3 == 0 {
                            std::thread::yield_now();
                        }
                        b.complete_into(&c, &plan, &mut out);
                        let others: Vec<usize> = (0..3).filter(|&q| q != r).collect();
                        let expect: Vec<f64> = others
                            .iter()
                            .flat_map(|&q| {
                                let v = (round * 3 + q) as f64;
                                [v, v]
                            })
                            .collect();
                        assert_eq!(out, expect, "rank {r} round {round}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Overlapped schedule: one rank computes "interior work" between post
    /// and complete while the others lag; the data read at completion must
    /// still be the current round's.
    #[test]
    fn overlap_window_reads_current_round() {
        let g = CommGroup::new(2);
        let board = VectorBoard::new(vec![0, 1, 2]);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = g.rank_comm(r);
                let b = board.handle();
                std::thread::spawn(move || {
                    let plan = b.plan(&[1 - r]);
                    let mut ghost = [0.0];
                    let mut acc = 0.0;
                    for round in 0..200 {
                        b.post(&c, &[(round * 2 + r) as f64]);
                        // Interior compute stand-in of rank-skewed length.
                        acc += (0..(r + 1) * 40).map(|i| i as f64).sum::<f64>();
                        b.complete_into(&c, &plan, &mut ghost);
                        assert_eq!(ghost[0], (round * 2 + (1 - r)) as f64);
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "offsets must be monotone")]
    fn rejects_bad_offsets() {
        VectorBoard::new(vec![0, 5, 3]);
    }

    #[test]
    #[should_panic(expected = "has not posted this round")]
    fn complete_without_post_is_rejected() {
        let g = CommGroup::new(1);
        let c = g.rank_comm(0);
        let board = VectorBoard::new(vec![0, 2]);
        let plan = board.plan(&[]);
        board.complete_into(&c, &plan, &mut []);
    }
}
