//! Distributed-memory substrate (MPI stand-in) for the `spcg` workspace.
//!
//! The paper runs on an MPI cluster (up to 128 nodes × 128 ranks). This
//! crate replaces that substrate with two complementary pieces:
//!
//! 1. **Instrumentation** ([`Counters`]): every solver records exactly the
//!    operation classes of the paper's Table 1 — matrix-vector products,
//!    preconditioner applications, global collectives and their payload
//!    sizes, local reduction FLOPs, and BLAS1/2/3 vector-update FLOPs. The
//!    `spcg-perf` crate converts these counts into modeled cluster time.
//! 2. **A threaded rank executor** ([`executor::run_ranks`], [`ThreadComm`],
//!    [`VectorBoard`]): runs R ranks as OS threads with *real* allreduce and
//!    vector-exchange synchronization over shared memory, exercising the
//!    same communication structure (one global reduction per s steps) at
//!    laptop scale. Reductions are deterministic: contributions are summed
//!    in rank order regardless of thread arrival order.

pub mod backend;
pub mod comm;
pub mod counters;
pub mod exchange;
pub mod executor;
pub mod fault;
pub mod topology;
pub mod wire;

pub use backend::{Backend, Comm, Exchange, ThreadBoard};
pub use comm::{CommGroup, ThreadComm};
pub use counters::Counters;
pub use exchange::{GatherPlan, VectorBoard};
pub use fault::{faults_armed, FaultCounts, FaultPlan, FaultSite, FAULT_SITES};
pub use topology::MachineTopology;
