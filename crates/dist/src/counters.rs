//! Operation counters — the instrumentation behind Table 1 and the
//! performance model.
//!
//! The paper's cost analysis (§4, Table 1) classifies work into: matrix-
//! vector products + preconditioner applications; local reduction FLOPs
//! (the local parts of dot products / Gram matrices); and vector /
//! matrix-column update FLOPs, split here by BLAS level because the paper's
//! performance argument for sPCG over CA-PCG3 is precisely that blocked
//! (BLAS2/3) updates beat BLAS1 updates at equal FLOP count. Communication
//! is recorded as the number of global collectives and their payloads.

/// Counts of every cost-relevant operation a solver performed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Sparse matrix-vector products.
    pub spmv_count: u64,
    /// FLOPs spent in SpMV (`2·nnz` each).
    pub spmv_flops: u64,
    /// Preconditioner applications.
    pub precond_count: u64,
    /// FLOPs spent applying the preconditioner.
    pub precond_flops: u64,
    /// Global reduction operations (MPI_Allreduce equivalents).
    pub global_collectives: u64,
    /// Total words (f64 values) reduced across all collectives.
    pub allreduce_words: u64,
    /// Number of length-n scalar products computed locally (dot products /
    /// Gram-matrix entries). Table 1 counts local reductions in this unit
    /// (one dot ≡ n FLOPs ≡ 1 FLOP per matrix row).
    pub dot_count: u64,
    /// Local FLOPs of reductions (dot products, Gram matrices): `2n` per
    /// scalar product of length-n vectors.
    pub local_reduction_flops: u64,
    /// FLOPs in unblocked vector updates (axpy, xpby, 3-term recurrences).
    pub blas1_flops: u64,
    /// FLOPs in matrix-vector-shaped dense updates (basis × small vector).
    pub blas2_flops: u64,
    /// FLOPs in blocked matrix-matrix-shaped updates (`P ← U + P·B`).
    pub blas3_flops: u64,
    /// FLOPs in `O(s)`-sized scalar work (small solves, small matmuls).
    pub small_flops: u64,
    /// Fine-grained iterations (PCG-equivalent steps; an s-step outer
    /// iteration advances this by s).
    pub iterations: u64,
    /// Outer iterations (equals `iterations` for standard PCG).
    pub outer_iterations: u64,
    /// Neighbour (halo / ghost-zone) exchange rounds this rank took part
    /// in. A depth-s ghost-zone MPK performs **one** round per s-step
    /// block; a naive distributed MPK performs s. Zero for serial runs.
    pub halo_exchanges: u64,
    /// Remote words (f64 values) this rank read across all halo exchanges.
    pub halo_words: u64,
    /// Residual-replacement restarts the resilience layer took (recovery
    /// from breakdown, non-finite iterates, or injected faults). Zero for
    /// undisturbed solves.
    pub restarts: u64,
}

impl Counters {
    /// A fresh zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one SpMV with the given FLOP cost.
    #[inline]
    pub fn record_spmv(&mut self, flops: u64) {
        self.spmv_count += 1;
        self.spmv_flops += flops;
    }

    /// Records one preconditioner application.
    #[inline]
    pub fn record_precond(&mut self, flops: u64) {
        self.precond_count += 1;
        self.precond_flops += flops;
    }

    /// Records one global collective reducing `words` values.
    #[inline]
    pub fn record_collective(&mut self, words: u64) {
        self.global_collectives += 1;
        self.allreduce_words += words;
    }

    /// Records the local FLOPs of `count` dot products of length `n`.
    #[inline]
    pub fn record_dots(&mut self, count: u64, n: u64) {
        self.dot_count += count;
        self.local_reduction_flops += 2 * count * n;
    }

    /// Adds piggybacked payload to the words of already-counted collectives
    /// (e.g. a residual norm fused into the per-outer-iteration reduction)
    /// without counting an extra synchronization.
    #[inline]
    pub fn piggyback_words(&mut self, words: u64) {
        self.allreduce_words += words;
    }

    /// Records one halo (ghost-zone) exchange round reading `words` remote
    /// values. A round may carry several vectors; it still counts once.
    #[inline]
    pub fn record_halo_exchange(&mut self, words: u64) {
        self.halo_exchanges += 1;
        self.halo_words += words;
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.spmv_count += other.spmv_count;
        self.spmv_flops += other.spmv_flops;
        self.precond_count += other.precond_count;
        self.precond_flops += other.precond_flops;
        self.global_collectives += other.global_collectives;
        self.allreduce_words += other.allreduce_words;
        self.dot_count += other.dot_count;
        self.local_reduction_flops += other.local_reduction_flops;
        self.blas1_flops += other.blas1_flops;
        self.blas2_flops += other.blas2_flops;
        self.blas3_flops += other.blas3_flops;
        self.small_flops += other.small_flops;
        self.iterations += other.iterations;
        self.outer_iterations += other.outer_iterations;
        self.halo_exchanges += other.halo_exchanges;
        self.halo_words += other.halo_words;
        self.restarts += other.restarts;
    }

    /// All FLOPs on length-n vectors beyond SpMV and preconditioner — the
    /// paper's "remaining FLOPs" column of Table 1.
    pub fn remaining_vector_flops(&self) -> u64 {
        self.local_reduction_flops + self.blas1_flops + self.blas2_flops + self.blas3_flops
    }

    /// The paper's Table-1 normalization: remaining FLOPs divided by n.
    pub fn remaining_flops_per_row(&self, n: usize) -> f64 {
        self.remaining_vector_flops() as f64 / n as f64
    }

    /// Total FLOPs of every class.
    pub fn total_flops(&self) -> u64 {
        self.spmv_flops + self.precond_flops + self.remaining_vector_flops() + self.small_flops
    }

    /// MV products plus preconditioner applications — the second column of
    /// Table 1.
    pub fn mv_plus_precond(&self) -> u64 {
        self.spmv_count + self.precond_count
    }

    /// Every field as a flat JSON object — the `"counters"` block of the
    /// trace exports (`spcg_obs::Tracer::export_json`), merging the
    /// Table-1 FLOP/communication counts into the timeline file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"spmv_count\":{},\"spmv_flops\":{},\"precond_count\":{},\"precond_flops\":{},\
             \"global_collectives\":{},\"allreduce_words\":{},\"dot_count\":{},\
             \"local_reduction_flops\":{},\"blas1_flops\":{},\"blas2_flops\":{},\
             \"blas3_flops\":{},\"small_flops\":{},\"iterations\":{},\"outer_iterations\":{},\
             \"halo_exchanges\":{},\"halo_words\":{},\"restarts\":{}}}",
            self.spmv_count,
            self.spmv_flops,
            self.precond_count,
            self.precond_flops,
            self.global_collectives,
            self.allreduce_words,
            self.dot_count,
            self.local_reduction_flops,
            self.blas1_flops,
            self.blas2_flops,
            self.blas3_flops,
            self.small_flops,
            self.iterations,
            self.outer_iterations,
            self.halo_exchanges,
            self.halo_words,
            self.restarts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = Counters::new();
        a.record_spmv(100);
        a.record_precond(40);
        a.record_collective(21);
        a.record_dots(3, 10);
        a.record_halo_exchange(12);
        let mut b = Counters::new();
        b.record_spmv(100);
        b.blas1_flops = 7;
        b.merge(&a);
        assert_eq!(b.spmv_count, 2);
        assert_eq!(b.halo_exchanges, 1);
        assert_eq!(b.halo_words, 12);
        assert_eq!(b.spmv_flops, 200);
        assert_eq!(b.precond_count, 1);
        assert_eq!(b.global_collectives, 1);
        assert_eq!(b.allreduce_words, 21);
        assert_eq!(b.local_reduction_flops, 60);
        assert_eq!(b.remaining_vector_flops(), 67);
        assert_eq!(b.mv_plus_precond(), 3);
    }

    #[test]
    fn per_row_normalization() {
        let mut c = Counters::new();
        c.blas1_flops = 600;
        c.local_reduction_flops = 200;
        assert!((c.remaining_flops_per_row(100) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn to_json_round_trips_every_field() {
        let mut c = Counters::new();
        c.record_spmv(100);
        c.record_precond(40);
        c.record_collective(21);
        c.record_dots(3, 10);
        c.record_halo_exchange(12);
        c.blas1_flops = 1;
        c.blas2_flops = 2;
        c.blas3_flops = 3;
        c.small_flops = 4;
        c.iterations = 5;
        c.outer_iterations = 6;
        c.restarts = 7;
        let json = c.to_json();
        let v = spcg_obs::json::parse(&json).expect("counters JSON parses");
        let field = |k: &str| v.get(k).and_then(spcg_obs::json::Value::as_f64).unwrap();
        assert_eq!(field("spmv_count"), 1.0);
        assert_eq!(field("spmv_flops"), 100.0);
        assert_eq!(field("precond_flops"), 40.0);
        assert_eq!(field("allreduce_words"), 21.0);
        assert_eq!(field("dot_count"), 3.0);
        assert_eq!(field("local_reduction_flops"), 60.0);
        assert_eq!(field("blas3_flops"), 3.0);
        assert_eq!(field("halo_words"), 12.0);
        assert_eq!(field("outer_iterations"), 6.0);
        assert_eq!(field("restarts"), 7.0);
    }

    #[test]
    fn total_flops_adds_all_classes() {
        let mut c = Counters::new();
        c.spmv_flops = 1;
        c.precond_flops = 2;
        c.blas1_flops = 4;
        c.blas2_flops = 8;
        c.blas3_flops = 16;
        c.local_reduction_flops = 32;
        c.small_flops = 64;
        assert_eq!(c.total_flops(), 127);
    }
}
