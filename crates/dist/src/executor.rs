//! Scoped-thread rank executor.
//!
//! Maps `nranks` SPMD rank functions onto OS threads, handing each one its
//! [`crate::ThreadComm`]. This is the shared-memory analogue of
//! `mpiexec -n <nranks>`: the same solver code that records communication
//! through [`crate::Counters`] can be executed with *real* synchronization
//! to validate that the communication structure (one reduction per s steps)
//! is what the instrumentation claims.

use crate::backend::Comm;
use crate::comm::{CommGroup, ThreadComm};

/// Runs `f(comm)` once per rank on `nranks` scoped threads and collects the
/// per-rank results in rank order. Panics in any rank propagate.
///
/// The concrete [`ThreadComm`] argument ties callers to the thread
/// backend; portable SPMD code should take [`run_ranks_dyn`] (or accept
/// `&dyn Comm` itself) and stay transport-agnostic. This entry point
/// remains for thread-backend plumbing that genuinely needs the concrete
/// type — e.g. binding a `VectorBoard` handle into a `ThreadBoard`.
pub fn run_ranks<R, F>(nranks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadComm) -> R + Sync,
{
    assert!(nranks > 0, "run_ranks: nranks must be positive");
    let group = CommGroup::new(nranks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nranks)
            .map(|r| {
                let comm = group.rank_comm(r);
                let f = &f;
                scope.spawn(move || f(comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// Backend-agnostic variant of [`run_ranks`]: each rank receives its
/// communicator as a boxed [`Comm`] trait object, so the rank function is
/// written once and runs unchanged under any transport that grows an
/// executor. Preferred over [`run_ranks`] for new SPMD code.
pub fn run_ranks_dyn<R, F>(nranks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Box<dyn Comm>) -> R + Sync,
{
    run_ranks(nranks, |comm| f(Box::new(comm)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_rank_order() {
        let out = run_ranks(6, |c| c.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn ranks_cooperate_via_allreduce() {
        let out = run_ranks(5, |c| c.allreduce_scalar(c.rank() as f64));
        assert!(out.iter().all(|&v| v == 10.0));
    }

    #[test]
    fn distributed_dot_product_matches_serial() {
        // A length-103 dot product split over 4 ranks.
        let x: Vec<f64> = (0..103).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64 * 0.5).cos()).collect();
        let serial: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let part = spcg_partition(103, 4);
        let x2 = x.clone();
        let y2 = y.clone();
        let out = run_ranks(4, move |c| {
            let (lo, hi) = part[c.rank()];
            let local: f64 = x2[lo..hi].iter().zip(&y2[lo..hi]).map(|(a, b)| a * b).sum();
            c.allreduce_scalar(local)
        });
        for v in out {
            assert!((v - serial).abs() < 1e-12);
        }
    }

    fn spcg_partition(n: usize, p: usize) -> Vec<(usize, usize)> {
        let base = n / p;
        let extra = n % p;
        let mut out = Vec::new();
        let mut acc = 0;
        for i in 0..p {
            let len = base + usize::from(i < extra);
            out.push((acc, acc + len));
            acc += len;
        }
        out
    }

    #[test]
    #[should_panic(expected = "nranks must be positive")]
    fn zero_ranks_rejected() {
        run_ranks(0, |_| ());
    }
}
