//! Machine topology description.
//!
//! The paper's experiments fix 128 MPI processes per node and scale the
//! number of nodes (§5.1, Figure 1). [`MachineTopology`] carries exactly
//! that description; the performance model in `spcg-perf` uses it to decide
//! how many reduction hops cross the (slow) inter-node network versus the
//! (fast) intra-node shared memory.

/// A homogeneous cluster: `nodes` × `ranks_per_node` MPI-style ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineTopology {
    /// Number of nodes.
    pub nodes: usize,
    /// Ranks (processes) per node; the paper uses 128.
    pub ranks_per_node: usize,
}

impl MachineTopology {
    /// Creates a topology; both dimensions must be positive.
    pub fn new(nodes: usize, ranks_per_node: usize) -> Self {
        assert!(
            nodes > 0 && ranks_per_node > 0,
            "MachineTopology: dimensions must be positive"
        );
        MachineTopology {
            nodes,
            ranks_per_node,
        }
    }

    /// The paper's configuration: `nodes` nodes with 128 ranks each.
    pub fn paper(nodes: usize) -> Self {
        Self::new(nodes, 128)
    }

    /// Total rank count.
    pub fn total_ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// Tree depth of an inter-node reduction: `ceil(log2(nodes))`.
    pub fn internode_hops(&self) -> u32 {
        usize::BITS - (self.nodes - 1).leading_zeros()
    }

    /// Tree depth of an intra-node reduction: `ceil(log2(ranks_per_node))`.
    pub fn intranode_hops(&self) -> u32 {
        usize::BITS - (self.ranks_per_node - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology() {
        let t = MachineTopology::paper(4);
        assert_eq!(t.total_ranks(), 512);
        assert_eq!(t.internode_hops(), 2);
        assert_eq!(t.intranode_hops(), 7);
    }

    #[test]
    fn hops_for_powers_of_two_and_between() {
        assert_eq!(MachineTopology::new(1, 1).internode_hops(), 0);
        assert_eq!(MachineTopology::new(2, 1).internode_hops(), 1);
        assert_eq!(MachineTopology::new(3, 1).internode_hops(), 2);
        assert_eq!(MachineTopology::new(128, 1).internode_hops(), 7);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_nodes_rejected() {
        MachineTopology::new(0, 4);
    }
}
