//! Binary wire format of the proc backend.
//!
//! Everything the parent and the `spcg-rankd` workers say to each other is
//! a **frame**: `[tag: u8][len: u64 LE][payload: len bytes]`. Tags are
//! defined by the protocol layer in `spcg-solvers`; this module only owns
//! framing and the little-endian payload primitives, so both sides encode
//! and decode identically with zero dependencies.
//!
//! Payloads are built with [`WireWriter`] and parsed with [`WireReader`].
//! Sequences are length-prefixed (`u64` count, then the elements), `f64`s
//! travel as their IEEE-754 bit patterns — the proc backend is bitwise
//! deterministic precisely because nothing is ever formatted or rounded.
//! Decoding panics on truncated or oversized payloads: a malformed frame
//! is a protocol bug (or a dying peer, which the reader side surfaces as
//! an I/O error before parsing), never a recoverable condition.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload — far above any real message
/// (the largest is a Setup frame carrying a CSR matrix), small enough to
/// turn stream corruption into an immediate error instead of an
/// out-of-memory wedge.
const MAX_FRAME: u64 = 1 << 34;

/// Writes `[tag][len][payload]` to `w` and flushes.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one `[tag][len][payload]` frame from `r`. An EOF before the first
/// byte — the peer closed cleanly or died — surfaces as
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((tag[0], payload))
}

/// Little-endian payload builder.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Fresh empty payload.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed `f64` sequence.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// Appends a length-prefixed `usize` sequence.
    pub fn usizes(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }

    /// Appends a length-prefixed `u64` sequence.
    pub fn u64s(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian payload parser. Methods panic on truncation — see the
/// module docs for why that is the right failure mode here.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Parses `buf` from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let end = self.pos.checked_add(n).expect("wire: length overflow");
        assert!(
            end <= self.buf.len(),
            "wire: truncated payload (want {n} at {}, have {})",
            self.pos,
            self.buf.len()
        );
        let out = &self.buf[self.pos..end];
        self.pos = end;
        out
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Reads a `usize`.
    pub fn usize(&mut self) -> usize {
        let v = self.u64();
        usize::try_from(v).expect("wire: usize overflow")
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    /// Reads a length-prefixed `f64` sequence.
    pub fn f64s(&mut self) -> Vec<f64> {
        let n = self.usize();
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed `usize` sequence.
    pub fn usizes(&mut self) -> Vec<usize> {
        let n = self.usize();
        (0..n).map(|_| self.usize()).collect()
    }

    /// Reads a length-prefixed `u64` sequence.
    pub fn u64s(&mut self) -> Vec<u64> {
        let n = self.usize();
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> String {
        let n = self.usize();
        String::from_utf8(self.take(n).to_vec()).expect("wire: invalid UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip_is_exact() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u64(u64::MAX);
        w.usize(12345);
        w.f64(-0.1);
        w.f64(f64::NAN);
        w.f64s(&[1.5, f64::INFINITY, -0.0]);
        w.usizes(&[0, 9, 4]);
        w.u64s(&[3]);
        w.str("spcg — proc");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8(), 7);
        assert_eq!(r.u64(), u64::MAX);
        assert_eq!(r.usize(), 12345);
        assert_eq!(r.f64().to_bits(), (-0.1f64).to_bits());
        assert!(r.f64().is_nan());
        let fs = r.f64s();
        assert_eq!(fs[0], 1.5);
        assert_eq!(fs[1], f64::INFINITY);
        assert_eq!(fs[2].to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.usizes(), vec![0, 9, 4]);
        assert_eq!(r.u64s(), vec![3]);
        assert_eq!(r.str(), "spcg — proc");
        assert!(r.is_done());
    }

    #[test]
    fn frames_roundtrip_over_a_stream() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 2, b"hello").unwrap();
        write_frame(&mut stream, 9, &[]).unwrap();
        let mut cur = io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cur).unwrap(), (2, b"hello".to_vec()));
        assert_eq!(read_frame(&mut cur).unwrap(), (9, Vec::new()));
        let err = read_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut stream = Vec::new();
        stream.push(1u8);
        stream.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(stream)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    #[should_panic(expected = "truncated payload")]
    fn truncated_payload_panics() {
        let mut r = WireReader::new(&[1, 2, 3]);
        r.u64();
    }
}
