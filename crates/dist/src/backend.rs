//! Pluggable communication backends: the [`Comm`] and [`Exchange`] traits.
//!
//! The paper's experiments run on MPI; this workspace originally ran on a
//! single concrete substrate, [`ThreadComm`] + [`crate::VectorBoard`] —
//! R ranks as OS threads over shared memory. This module extracts what the
//! solvers actually *require* from that substrate into two object-safe
//! traits so transports can be swapped without touching solver code:
//!
//! * [`Comm`] — rank identity and the collectives (barrier, deterministic
//!   `allreduce_sum`). Exactly the MPI subset the s-step methods use: one
//!   global reduction per s steps.
//! * [`Exchange`] — the split-phase halo protocol (`post` /
//!   `complete_into` / `complete_snapshot`) plus plan construction. An
//!   implementation carries its own rank and transport state; callers
//!   never pass a communicator into exchange calls.
//!
//! Both traits are dyn-safe on purpose: the ranked engine holds
//! `Box<dyn Comm>` and `Box<dyn Exchange>`, so a solve is generic over the
//! transport at zero algorithmic cost.
//!
//! Two backends exist ([`Backend`]):
//!
//! * [`Backend::Thread`] — [`ThreadComm`] + [`ThreadBoard`] (a
//!   [`VectorBoard`] bound to one rank's communicator). In-process,
//!   shared-memory, the default.
//! * [`Backend::Proc`] — worker *processes* over Unix-domain sockets
//!   (implemented in `spcg-solvers`, which owns the solver state a worker
//!   must rebuild). Real rank death becomes observable: a killed worker
//!   closes its socket, and the driver heals through the same restart path
//!   that absorbs injected faults.
//!
//! The determinism contract is backend-independent: reductions sum
//! contributions in rank order, exchanges deliver whole published rounds,
//! and fault injection decides from `(seed, site, rank, seq)` — so thread
//! and proc solves of the same problem are bitwise identical.

use crate::comm::ThreadComm;
use crate::exchange::{GatherPlan, VectorBoard};
use spcg_obs::Track;

/// Collective communication contract of one rank.
///
/// Implementations must make [`Comm::allreduce_sum`] deterministic: every
/// rank receives the bitwise-identical result of summing the per-rank
/// contributions in rank order (0, 1, …), independent of arrival order.
pub trait Comm {
    /// This rank's id, in `0..nranks`.
    fn rank(&self) -> usize;

    /// Number of participating ranks.
    fn nranks(&self) -> usize;

    /// Blocks until every rank has arrived.
    fn barrier(&self);

    /// Global sum-reduction of `buf` across all ranks, in place, summed in
    /// rank order (deterministic; see the trait docs).
    fn allreduce_sum(&self, buf: &mut [f64]);

    /// Convenience: allreduce a single scalar.
    fn allreduce_scalar(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum(&mut buf);
        buf[0]
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        ThreadComm::rank(self)
    }

    fn nranks(&self) -> usize {
        ThreadComm::nranks(self)
    }

    fn barrier(&self) {
        ThreadComm::barrier(self)
    }

    fn allreduce_sum(&self, buf: &mut [f64]) {
        ThreadComm::allreduce_sum(self, buf)
    }
}

/// Split-phase halo-exchange contract of one rank.
///
/// The protocol is the one documented on [`crate::exchange`]: every round
/// on a board is exactly one [`Exchange::post`] followed by exactly one
/// completion ([`Exchange::complete_into`] or
/// [`Exchange::complete_snapshot`]) on every rank, rounds are sequenced by
/// per-rank epochs, and a completion returns only whole published rounds.
/// Implementations carry their own rank and transport handle.
pub trait Exchange {
    /// Posts this rank's chunk for the next round (the *send* side);
    /// returns without waiting for remote data. `track` wraps the call in
    /// an `ExchangePost` span when given.
    fn post(&self, chunk: &[f64], track: Option<&Track>);

    /// Completes the posted round: waits for the plan's source ranks and
    /// gathers the plan's runs into `out` (in plan order). `track` wraps
    /// the call in an `ExchangeWait` span when given.
    fn complete_into(&self, plan: &GatherPlan, out: &mut [f64], track: Option<&Track>);

    /// Completes the posted round with a copy of the full assembled
    /// vector — the all-neighbour variant of the replicated fallbacks.
    fn complete_snapshot(&self, track: Option<&Track>) -> Vec<f64>;

    /// Compresses `indices` (global vector positions) into a reusable
    /// [`GatherPlan`] against this board's partition.
    fn plan(&self, indices: &[usize]) -> GatherPlan;

    /// Row range owned by `rank` under this board's partition.
    fn range(&self, rank: usize) -> (usize, usize);
}

/// The thread backend's [`Exchange`]: a [`VectorBoard`] handle bound to
/// one rank's [`ThreadComm`].
pub struct ThreadBoard {
    board: VectorBoard,
    comm: ThreadComm,
}

impl ThreadBoard {
    /// Binds a board handle to `comm`'s rank.
    pub fn new(board: VectorBoard, comm: ThreadComm) -> Self {
        ThreadBoard { board, comm }
    }
}

impl Exchange for ThreadBoard {
    fn post(&self, chunk: &[f64], track: Option<&Track>) {
        self.board.post_traced(&self.comm, chunk, track);
    }

    fn complete_into(&self, plan: &GatherPlan, out: &mut [f64], track: Option<&Track>) {
        self.board
            .complete_into_traced(&self.comm, plan, out, track);
    }

    fn complete_snapshot(&self, track: Option<&Track>) -> Vec<f64> {
        self.board.complete_snapshot_traced(&self.comm, track)
    }

    fn plan(&self, indices: &[usize]) -> GatherPlan {
        self.board.plan(indices)
    }

    fn range(&self, rank: usize) -> (usize, usize) {
        self.board.range(rank)
    }
}

/// Which transport a ranked solve runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Ranks as OS threads over shared memory ([`ThreadComm`]). Default.
    #[default]
    Thread,
    /// Ranks as worker processes over Unix-domain sockets. Selected with
    /// `SPCG_BACKEND=proc` or `SolveOptions::backend`.
    Proc,
}

impl Backend {
    /// Stable lowercase name (env/report key).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Thread => "thread",
            Backend::Proc => "proc",
        }
    }

    /// Parses `"thread"` / `"proc"` (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("thread") {
            Some(Backend::Thread)
        } else if s.eq_ignore_ascii_case("proc") {
            Some(Backend::Proc)
        } else {
            None
        }
    }

    /// Backend selected by `SPCG_BACKEND`, if set and well-formed.
    pub fn from_env() -> Option<Backend> {
        Backend::parse(&std::env::var("SPCG_BACKEND").ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommGroup;

    #[test]
    fn backend_parse_roundtrip() {
        for b in [Backend::Thread, Backend::Proc] {
            assert_eq!(Backend::parse(b.as_str()), Some(b));
        }
        assert_eq!(Backend::parse(" PROC "), Some(Backend::Proc));
        assert_eq!(Backend::parse("mpi"), None);
        assert_eq!(Backend::default(), Backend::Thread);
    }

    #[test]
    fn thread_comm_through_dyn_object() {
        let g = CommGroup::new(1);
        let c: Box<dyn Comm> = Box::new(g.rank_comm(0));
        assert_eq!(c.rank(), 0);
        assert_eq!(c.nranks(), 1);
        c.barrier();
        assert_eq!(c.allreduce_scalar(2.5), 2.5);
    }

    #[test]
    fn thread_board_roundtrip_through_trait() {
        let g = CommGroup::new(2);
        let board = VectorBoard::new(vec![0, 2, 4]);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let ex: Box<dyn Exchange + Send> =
                    Box::new(ThreadBoard::new(board.handle(), g.rank_comm(r)));
                std::thread::spawn(move || {
                    let plan = ex.plan(if r == 0 { &[2, 3] } else { &[0, 1] });
                    assert_eq!(ex.range(r), (2 * r, 2 * r + 2));
                    ex.post(&[r as f64, r as f64], None);
                    let mut halo = vec![0.0; 2];
                    ex.complete_into(&plan, &mut halo, None);
                    halo
                })
            })
            .collect();
        for (r, h) in handles.into_iter().enumerate() {
            let other = (1 - r) as f64;
            assert_eq!(h.join().unwrap(), vec![other, other]);
        }
    }
}
