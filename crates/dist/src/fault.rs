//! Deterministic fault injection for the distributed substrate.
//!
//! The paper's central question is *when s-step PCG breaks*; this module
//! lets the engine provoke the distributed failure modes on demand — rank
//! stalls at exchange boundaries, duplicated epoch publishes, and NaN
//! payload poisoning — so the self-healing layer in `spcg-solvers` can be
//! exercised (and CI-gated) instead of trusted.
//!
//! Every injection decision is a **pure function** of
//! `(seed, site, rank, sequence number)` where the sequence number is a
//! deterministic per-rank counter (the exchange round of a
//! [`crate::VectorBoard`], or an allreduce call index) — never wall-clock
//! time. Consequences:
//!
//! * the same seed reproduces the same injection sites, run after run;
//! * schedule-equivalent runs (overlap on/off, traced/untraced, any
//!   intra-rank thread count) receive **identical** injections, so the
//!   workspace's bitwise-parity contracts keep holding under fault load;
//! * a plan with rate `0.0` — or no plan at all — changes nothing: the
//!   zero-fault path is bitwise identical to a build without this module.
//!
//! Injections are confined to a deterministic warm-up window of early
//! sequence numbers ([`FaultPlan::window`]): once a solve's exchange
//! rounds pass the window, the run is provably clean, so a bounded restart
//! budget always suffices for recovery. Single-rank runs never inject
//! (there is no "distributed substrate" to fail), preserving every
//! ranks=1-versus-serial parity test.
//!
//! Arm a plan process-wide with `SPCG_FAULTS=<seed>:<rate>` (for example
//! `SPCG_FAULTS=101:0.05`), or construct one explicitly with
//! [`FaultPlan::new`] for targeted tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Delay a rank inside [`crate::VectorBoard::post`] before it raises
    /// its readiness flag — neighbours waiting in a completion see the
    /// stall and exercise the timeout/retry path.
    PostStall = 0,
    /// Publish the posted chunk a second, redundant time (an extra board
    /// write plus condvar broadcast of identical data) — a duplicated
    /// epoch publish that the protocol must absorb without corruption.
    PublishDuplicate = 1,
    /// Delay a rank before it begins waiting in
    /// [`crate::VectorBoard::complete_into`] — the consumer-side stall,
    /// which holds the *next* round's posts back.
    CompleteStall = 2,
    /// Overwrite one boundary entry of the posted chunk **in the board
    /// copy** with NaN — downstream ranks gather the poison while the
    /// owner's local data stays clean, the classic partially-corrupt halo.
    PoisonHalo = 3,
    /// Overwrite the first word of this rank's allreduce contribution with
    /// NaN — every rank then sees a non-finite reduced value (the board's
    /// reductions are deterministic), driving the solver's breakdown
    /// detection.
    PoisonReduce = 4,
}

/// All sites, in counter order.
pub const FAULT_SITES: [FaultSite; 5] = [
    FaultSite::PostStall,
    FaultSite::PublishDuplicate,
    FaultSite::CompleteStall,
    FaultSite::PoisonHalo,
    FaultSite::PoisonReduce,
];

impl FaultSite {
    /// Stable snake_case name (report/JSON key).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::PostStall => "post_stall",
            FaultSite::PublishDuplicate => "publish_duplicate",
            FaultSite::CompleteStall => "complete_stall",
            FaultSite::PoisonHalo => "poison_halo",
            FaultSite::PoisonReduce => "poison_reduce",
        }
    }

    fn index(self) -> usize {
        self as usize
    }

    /// Per-site salt so sites draw independent pseudo-random streams.
    fn salt(self) -> u64 {
        [
            0x9e37_79b9_7f4a_7c15,
            0xbf58_476d_1ce4_e5b9,
            0x94d0_49bb_1331_11eb,
            0xd6e8_feb8_6659_fd93,
            0xa076_1d64_78bd_642f,
        ][self.index()]
    }
}

/// How long a stall fault sleeps — long enough to outlast the armed retry
/// timeout (so stalls genuinely exercise the retry path), short enough to
/// keep a fault-swept suite fast.
pub const STALL: Duration = Duration::from_millis(6);

/// Injection decisions only fire for sequence numbers below this window
/// (see the module docs for why boundedness matters).
const INJECT_WINDOW: u64 = 48;

struct PlanInner {
    seed: u64,
    rate: f64,
    /// Bitmask over [`FAULT_SITES`] — which sites are enabled.
    sites: u8,
    /// Per-site injection counters (diagnostics; never branch on these).
    injected: [AtomicU64; 5],
}

/// A seeded, shareable fault-injection plan.
///
/// Cloning shares the plan (and its counters); attach clones to the boards
/// and rank executors of one solve so [`FaultPlan::counts`] describes that
/// solve. See the module docs for the determinism contract.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.inner.seed)
            .field("rate", &self.inner.rate)
            .field("injected", &self.counts().total())
            .finish()
    }
}

impl FaultPlan {
    /// Creates a plan with all sites enabled. `rate` is the injection
    /// probability per opportunity, clamped to `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                rate: rate.clamp(0.0, 1.0),
                sites: 0b1_1111,
                injected: Default::default(),
            }),
        }
    }

    /// Restricts the plan to the given sites (e.g. stalls only, to test
    /// the retry path without numerical perturbation).
    pub fn with_sites(self, sites: &[FaultSite]) -> Self {
        let mask = sites.iter().fold(0u8, |m, s| m | 1 << s.index());
        self.with_sites_mask(mask)
    }

    /// Restricts the plan by raw bitmask over [`FAULT_SITES`] — the wire
    /// form the proc backend ships to workers, which rebuild an identical
    /// plan from `(seed, rate, mask)`. Counters start fresh.
    pub fn with_sites_mask(self, mask: u8) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed: self.inner.seed,
                rate: self.inner.rate,
                sites: mask,
                injected: Default::default(),
            }),
        }
    }

    /// The enabled-site bitmask over [`FAULT_SITES`] (see
    /// [`FaultPlan::with_sites_mask`]).
    pub fn sites_mask(&self) -> u8 {
        self.inner.sites
    }

    /// Parses `SPCG_FAULTS=<seed>:<rate>` into a plan; `None` when the
    /// variable is unset or malformed. Each call builds a **fresh** plan
    /// (fresh counters) from the same environment, so concurrent solves
    /// report independently while injecting identically.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("SPCG_FAULTS").ok()?;
        let (seed, rate) = raw.split_once(':')?;
        let seed = seed.trim().parse::<u64>().ok()?;
        let rate = rate.trim().parse::<f64>().ok()?;
        Some(FaultPlan::new(seed, rate))
    }

    /// Seed the plan draws its decisions from.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Injection probability per opportunity.
    pub fn rate(&self) -> f64 {
        self.inner.rate
    }

    /// True if the plan can inject at all.
    pub fn active(&self) -> bool {
        self.inner.rate > 0.0 && self.inner.sites != 0
    }

    /// The deterministic warm-up window: injections only occur at sequence
    /// numbers below this.
    pub fn window(&self) -> u64 {
        INJECT_WINDOW
    }

    /// Pure decision function: would this plan inject at
    /// `(site, rank, seq)`? Does **not** count — use [`FaultPlan::fire`]
    /// at a real injection point. `salt` decorrelates otherwise-identical
    /// streams (e.g. the two boards of a ranked solve).
    pub fn decides(&self, site: FaultSite, salt: u64, rank: usize, seq: u64) -> bool {
        if self.inner.sites & (1 << site.index()) == 0 || seq >= INJECT_WINDOW {
            return false;
        }
        let mut h = splitmix64(self.inner.seed ^ site.salt());
        h = splitmix64(h ^ salt.wrapping_mul(0xff51_afd7_ed55_8ccd));
        h = splitmix64(h ^ (rank as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53));
        h = splitmix64(h ^ seq);
        // Map to [0, 1): top 53 bits as a double.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.inner.rate
    }

    /// Decision + counter: returns [`FaultPlan::decides`] and, when true,
    /// records the injection against `site`.
    pub fn fire(&self, site: FaultSite, salt: u64, rank: usize, seq: u64) -> bool {
        let hit = self.decides(site, salt, rank, seq);
        if hit {
            self.inner.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Credits `n` injections that fired against `site` in a *remote*
    /// incarnation of this plan — a proc-backend worker rebuilds the plan
    /// from `(seed, rate, mask)`, fires locally, and reports per-site
    /// deltas, which the parent records here so [`FaultPlan::counts`]
    /// describes the whole solve regardless of backend.
    pub fn record_remote(&self, site: FaultSite, n: u64) {
        if n > 0 {
            self.inner.injected[site.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Snapshot of the per-site injection counters.
    pub fn counts(&self) -> FaultCounts {
        let mut by_site = [0u64; 5];
        for (slot, ctr) in by_site.iter_mut().zip(&self.inner.injected) {
            *slot = ctr.load(Ordering::Relaxed);
        }
        FaultCounts { by_site }
    }
}

/// Per-site injection counters of a [`FaultPlan`] at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    by_site: [u64; 5],
}

impl FaultCounts {
    /// Injections recorded for one site.
    pub fn site(&self, site: FaultSite) -> u64 {
        self.by_site[site.index()]
    }

    /// Total injections across all sites.
    pub fn total(&self) -> u64 {
        self.by_site.iter().sum()
    }

    /// Counter-wise difference (`self - earlier`), for bracketing a solve.
    pub fn since(&self, earlier: &FaultCounts) -> FaultCounts {
        let mut by_site = [0u64; 5];
        for i in 0..5 {
            by_site[i] = self.by_site[i].saturating_sub(earlier.by_site[i]);
        }
        FaultCounts { by_site }
    }

    /// `site: count` pairs for every site with a nonzero count.
    pub fn nonzero(&self) -> Vec<(FaultSite, u64)> {
        FAULT_SITES
            .iter()
            .filter_map(|&s| {
                let c = self.site(s);
                (c > 0).then_some((s, c))
            })
            .collect()
    }
}

/// True when `SPCG_FAULTS` arms an active plan in this environment — the
/// switch test suites use to relax exact-count assertions that restart
/// recovery legitimately perturbs.
pub fn faults_armed() -> bool {
    FaultPlan::from_env().is_some_and(|p| p.active())
}

/// SplitMix64 — the standard 64-bit finalizer-style mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::new(42, 0.3);
        let b = FaultPlan::new(42, 0.3);
        let c = FaultPlan::new(43, 0.3);
        let mut any_differs = false;
        for site in FAULT_SITES {
            for rank in 0..4 {
                for seq in 0..INJECT_WINDOW {
                    assert_eq!(
                        a.decides(site, 0, rank, seq),
                        b.decides(site, 0, rank, seq),
                        "same seed must agree at {site:?} rank {rank} seq {seq}"
                    );
                    if a.decides(site, 0, rank, seq) != c.decides(site, 0, rank, seq) {
                        any_differs = true;
                    }
                }
            }
        }
        assert!(any_differs, "different seeds should differ somewhere");
    }

    #[test]
    fn rate_bounds_and_window() {
        let never = FaultPlan::new(7, 0.0);
        let always = FaultPlan::new(7, 1.0);
        assert!(!never.active());
        for site in FAULT_SITES {
            for seq in 0..INJECT_WINDOW {
                assert!(!never.decides(site, 0, 0, seq));
                assert!(always.decides(site, 0, 0, seq));
            }
            // Beyond the window nothing ever fires — boundedness.
            assert!(!always.decides(site, 0, 0, INJECT_WINDOW));
            assert!(!always.decides(site, 0, 0, INJECT_WINDOW + 1000));
        }
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let plan = FaultPlan::new(1234, 0.25);
        let mut hits = 0usize;
        let mut total = 0usize;
        for site in FAULT_SITES {
            for rank in 0..8 {
                for seq in 0..INJECT_WINDOW {
                    total += 1;
                    if plan.decides(site, 0, rank, seq) {
                        hits += 1;
                    }
                }
            }
        }
        let observed = hits as f64 / total as f64;
        assert!(
            (observed - 0.25).abs() < 0.05,
            "observed rate {observed} far from 0.25"
        );
    }

    #[test]
    fn fire_counts_per_site() {
        let plan = FaultPlan::new(5, 1.0);
        assert!(plan.fire(FaultSite::PostStall, 0, 0, 0));
        assert!(plan.fire(FaultSite::PostStall, 0, 1, 3));
        assert!(plan.fire(FaultSite::PoisonHalo, 0, 0, 0));
        let counts = plan.counts();
        assert_eq!(counts.site(FaultSite::PostStall), 2);
        assert_eq!(counts.site(FaultSite::PoisonHalo), 1);
        assert_eq!(counts.total(), 3);
        assert_eq!(
            counts.nonzero(),
            vec![(FaultSite::PostStall, 2), (FaultSite::PoisonHalo, 1)]
        );
        let later = plan.counts();
        assert_eq!(later.since(&counts).total(), 0);
    }

    #[test]
    fn site_mask_restricts_injection() {
        let plan = FaultPlan::new(5, 1.0).with_sites(&[FaultSite::PostStall]);
        assert!(plan.decides(FaultSite::PostStall, 0, 0, 0));
        assert!(!plan.decides(FaultSite::PoisonHalo, 0, 0, 0));
        assert!(plan.active());
        let none = FaultPlan::new(5, 1.0).with_sites(&[]);
        assert!(!none.active());
    }

    #[test]
    fn salts_decorrelate_streams() {
        let plan = FaultPlan::new(99, 0.5);
        let differs = (0..INJECT_WINDOW).any(|seq| {
            plan.decides(FaultSite::PoisonHalo, 0, 0, seq)
                != plan.decides(FaultSite::PoisonHalo, 1, 0, seq)
        });
        assert!(differs, "board salts should draw distinct streams");
    }

    #[test]
    fn env_parsing_shapes() {
        // from_env reads the live environment; exercise the parser through
        // a plan round-trip instead of mutating the process env (unsafe
        // under parallel tests).
        let plan = FaultPlan::new(101, 0.05);
        assert_eq!(plan.seed(), 101);
        assert!((plan.rate() - 0.05).abs() < 1e-12);
        assert!(plan.active());
        assert!(plan.window() > 0);
    }
}
