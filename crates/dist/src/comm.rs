//! Shared-memory communicator with MPI-style collectives.
//!
//! [`CommGroup`] owns the shared state for `nranks` participants;
//! [`ThreadComm`] is the per-rank handle passed into each rank's closure by
//! [`crate::executor::run_ranks`]. The only collective the s-step solvers
//! need is `allreduce_sum` (plus barriers), mirroring the paper's claim that
//! each solver performs exactly one global reduction per s steps.
//!
//! Determinism: contributions are deposited into per-rank slots and summed
//! in rank order by every participant, so results are bit-identical across
//! runs regardless of thread scheduling.

use std::sync::{Arc, Condvar, Mutex};

/// A reusable sense-reversing barrier.
struct Barrier {
    lock: Mutex<BarrierState>,
    cvar: Condvar,
    total: usize,
}

struct BarrierState {
    count: usize,
    generation: u64,
}

impl Barrier {
    fn new(total: usize) -> Self {
        Barrier {
            lock: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            cvar: Condvar::new(),
            total,
        }
    }

    fn wait(&self) {
        // Watchdog slice: long enough that a healthy barrier (even under
        // injected exchange stalls, which sleep milliseconds) never trips
        // it, short enough to turn a genuine deadlock — a dead rank or
        // diverged SPMD control flow — into a diagnosable panic instead
        // of a silent wedge.
        const WATCHDOG_SLICE: std::time::Duration = std::time::Duration::from_secs(5);
        const WATCHDOG_SLICES: u32 = 6;
        let mut st = self.lock.lock().unwrap();
        let gen = st.generation;
        st.count += 1;
        if st.count == self.total {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
        } else {
            let mut slices = 0;
            while st.generation == gen {
                let (next, timeout) = self.cvar.wait_timeout(st, WATCHDOG_SLICE).unwrap();
                st = next;
                if timeout.timed_out() && st.generation == gen {
                    slices += 1;
                    assert!(
                        slices < WATCHDOG_SLICES,
                        "barrier stuck: {}/{} ranks arrived after {:?}",
                        st.count,
                        self.total,
                        WATCHDOG_SLICE * slices,
                    );
                }
            }
        }
    }
}

/// Shared state of a communicator over `nranks` participants.
pub struct CommGroup {
    nranks: usize,
    barrier: Barrier,
    /// One deposit slot per rank for allreduce contributions.
    slots: Vec<Mutex<Vec<f64>>>,
}

impl CommGroup {
    /// Creates the shared state for `nranks` ranks.
    ///
    /// # Panics
    /// Panics if `nranks == 0`.
    pub fn new(nranks: usize) -> Arc<Self> {
        assert!(nranks > 0, "CommGroup: nranks must be positive");
        Arc::new(CommGroup {
            nranks,
            barrier: Barrier::new(nranks),
            slots: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
        })
    }

    /// Hands out the per-rank communicator handle.
    pub fn rank_comm(self: &Arc<Self>, rank: usize) -> ThreadComm {
        assert!(rank < self.nranks, "rank_comm: rank out of range");
        ThreadComm {
            group: Arc::clone(self),
            rank,
        }
    }
}

/// Per-rank handle to a [`CommGroup`].
#[derive(Clone)]
pub struct ThreadComm {
    group: Arc<CommGroup>,
    rank: usize,
}

impl ThreadComm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of participants.
    pub fn nranks(&self) -> usize {
        self.group.nranks
    }

    /// Blocks until every rank has arrived.
    pub fn barrier(&self) {
        self.group.barrier.wait();
    }

    /// Global sum-reduction of `buf` across all ranks, in place. Every rank
    /// receives the same result; the summation order is fixed (rank 0, 1, …)
    /// so the result is deterministic.
    ///
    /// # Panics
    /// Panics (eventually, at the deposit barrier) if ranks pass buffers of
    /// different lengths; each rank's buffer length is validated against
    /// rank 0's after the deposit phase.
    pub fn allreduce_sum(&self, buf: &mut [f64]) {
        // Deposit phase.
        {
            let mut slot = self.group.slots[self.rank].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(buf);
        }
        self.group.barrier.wait();
        // Reduce phase: everyone sums in rank order.
        for v in buf.iter_mut() {
            *v = 0.0;
        }
        for r in 0..self.group.nranks {
            let slot = self.group.slots[r].lock().unwrap();
            assert_eq!(
                slot.len(),
                buf.len(),
                "allreduce_sum: length mismatch across ranks"
            );
            for (b, s) in buf.iter_mut().zip(slot.iter()) {
                *b += *s;
            }
        }
        // Exit barrier so no rank re-deposits before everyone has read.
        self.group.barrier.wait();
    }

    /// Convenience: allreduce a single scalar.
    pub fn allreduce_scalar(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum(&mut buf);
        buf[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_allreduce_is_identity() {
        let g = CommGroup::new(1);
        let c = g.rank_comm(0);
        let mut buf = [1.5, -2.0];
        c.allreduce_sum(&mut buf);
        assert_eq!(buf, [1.5, -2.0]);
    }

    #[test]
    fn multi_rank_allreduce_sums() {
        let g = CommGroup::new(4);
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let c = g.rank_comm(r);
                std::thread::spawn(move || {
                    let mut buf = vec![r as f64, 1.0];
                    c.allreduce_sum(&mut buf);
                    buf
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert_eq!(out, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn allreduce_is_reusable_and_deterministic() {
        let g = CommGroup::new(3);
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let c = g.rank_comm(r);
                std::thread::spawn(move || {
                    let mut results = Vec::new();
                    for round in 0..50 {
                        let x = (r as f64 + 1.0) * 0.1 + round as f64;
                        results.push(c.allreduce_scalar(x));
                    }
                    results
                })
            })
            .collect();
        let all: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every rank sees identical values in every round.
        assert_eq!(all[0], all[1]);
        assert_eq!(all[1], all[2]);
        assert!((all[0][0] - 0.6).abs() < 1e-15);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = CommGroup::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|r| {
                let c = g.rank_comm(r);
                let k = Arc::clone(&counter);
                std::thread::spawn(move || {
                    k.fetch_add(1, Ordering::SeqCst);
                    c.barrier();
                    // After the barrier every increment must be visible.
                    assert_eq!(k.load(Ordering::SeqCst), 8);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
