//! Parity suite for the batched solve service.
//!
//! The service's contract is that putting it in front of a solver changes
//! throughput and nothing else: a width-1 batch — and every individual
//! column of a wider batch — must be **bitwise identical** (iterate,
//! history, counters) to the standalone `solve()` of that right-hand side,
//! for every method, engine, and sparse format. The suite honours
//! `SPCG_RANKS` (extra rank count), `SPCG_THREADS`, and `SPCG_FORMAT`
//! like the other integration suites, so the CI service job can sweep
//! configurations without code changes.

use spcg::precond::{Jacobi, Preconditioner};
use spcg::service::{fingerprint, ServiceConfig, SolveService, SolveSpec, SolverHandle};
use spcg::solvers::{
    chebyshev_basis, solve, solve_batch, BatchRequest, Engine, Method, Problem, SolveOptions,
    SolveResult,
};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_2d;
use spcg::sparse::{CsrMatrix, SparseFormat};
use std::sync::Arc;

const S: usize = 4;

fn all_methods(problem: &Problem<'_>) -> Vec<Method> {
    let basis = chebyshev_basis(problem, 20, 0.05);
    vec![
        Method::Pcg,
        Method::Pcg3,
        Method::SPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::SPcgMon { s: S },
        Method::CaPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::CaPcg3 { s: S, basis },
    ]
}

fn engines() -> Vec<Engine> {
    let mut engines = vec![Engine::Serial, Engine::Ranked { ranks: 2 }];
    if let Some(r) = spcg::solvers::env::parsed::<usize>("SPCG_RANKS") {
        let e = Engine::Ranked { ranks: r };
        if !engines.contains(&e) {
            engines.push(e);
        }
    }
    engines
}

fn assert_bitwise(batched: &SolveResult, plain: &SolveResult, what: &str) {
    assert_eq!(batched.outcome, plain.outcome, "{what}: outcome");
    assert_eq!(batched.iterations, plain.iterations, "{what}: iterations");
    assert_eq!(batched.x, plain.x, "{what}: iterate not bitwise equal");
    assert_eq!(batched.history, plain.history, "{what}: history");
    assert_eq!(batched.counters, plain.counters, "{what}: counters");
}

/// A small family of distinct right-hand sides.
fn rhs_family(a: &CsrMatrix, k: usize) -> Vec<Vec<f64>> {
    let base = paper_rhs(a);
    (0..k)
        .map(|j| {
            base.iter()
                .enumerate()
                .map(|(i, &v)| v * (1.0 + j as f64) + ((i + 3 * j) % 7) as f64 * 0.01)
                .collect()
        })
        .collect()
}

/// k = 1 through the service is bitwise identical to `solve()` for every
/// method × engine × format — both the blocked PCG fast path and the
/// sequential fallback the other methods take.
#[test]
fn k1_service_solve_is_bitwise_identical_to_plain_solve() {
    let a = Arc::new(poisson_2d(14));
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    for format in [SparseFormat::Csr, SparseFormat::Sell] {
        let opts = SolveOptions::default().with_format(format).with_history();
        for engine in engines() {
            for method in all_methods(&problem) {
                let what = format!("{} {engine:?} {format:?}", method.name());
                let plain = solve(&method, &problem, &opts, engine);
                assert!(plain.converged(), "{what}: {:?}", plain.outcome);
                let spec = SolveSpec::new(method, m.spec().unwrap())
                    .with_opts(opts.clone())
                    .with_engine(engine);
                let handle = SolverHandle::build(Arc::clone(&a), spec);
                assert_bitwise(&handle.solve_one(&b), &plain, &what);
            }
        }
    }
}

/// Wider batches: every column converges to the shared tolerance, and
/// each is bitwise identical to its standalone solve.
#[test]
fn wide_batches_converge_and_match_standalone_solves() {
    let a = Arc::new(poisson_2d(12));
    let m = Jacobi::new(&a);
    let bs = rhs_family(&a, 4);
    for format in [SparseFormat::Csr, SparseFormat::Sell] {
        let opts = SolveOptions::default().with_format(format).with_history();
        for method in [Method::Pcg, Method::SPcgMon { s: S }] {
            let reqs: Vec<BatchRequest<'_>> = bs.iter().map(|b| BatchRequest::new(b)).collect();
            let batch = solve_batch(&method, &a, &m, &reqs, &opts, Engine::Serial);
            for (j, b) in bs.iter().enumerate() {
                let what = format!("{} col {j} {format:?}", method.name());
                let plain = solve(&method, &Problem::new(&a, &m, b), &opts, Engine::Serial);
                assert!(batch[j].converged(), "{what}: {:?}", batch[j].outcome);
                assert!(
                    batch[j].true_relative_residual(&a, b) < opts.tol * 10.0,
                    "{what}: residual {}",
                    batch[j].true_relative_residual(&a, b)
                );
                assert_bitwise(&batch[j], &plain, &what);
            }
        }
    }
}

/// The fingerprint cache: repeats hit; any change to values, recipe, or
/// options misses.
#[test]
fn fingerprint_cache_hits_and_misses() {
    let a = Arc::new(poisson_2d(10));
    let b = paper_rhs(&a);
    let spec = SolveSpec::new(Method::Pcg, Jacobi::new(&a).spec().unwrap());
    let svc = SolveService::new(ServiceConfig {
        max_batch: 8,
        cache_capacity: 8,
    });

    svc.submit(&a, &spec, &b, None);
    svc.submit(&a, &spec, &b, None);
    let s = svc.stats();
    assert_eq!((s.misses, s.hits), (1, 1), "repeat must hit");

    // Perturbing one matrix value by one ulp is a different operator.
    let n = a.nrows();
    let mut coo = spcg::sparse::CooMatrix::new(n, n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            let v = if i == n / 2 && c == n / 2 {
                f64::from_bits(v.to_bits() + 1)
            } else {
                v
            };
            coo.push(i, c, v);
        }
    }
    let a2 = Arc::new(coo.to_csr());
    assert_ne!(fingerprint(&a, &spec), fingerprint(&a2, &spec));
    svc.submit(&a2, &spec, &b, None);
    assert_eq!(svc.stats().misses, 2, "value change must miss");

    // A different preconditioner recipe misses.
    let mut ic0 = spec.clone();
    ic0.precond = spcg::precond::PrecondSpec::Ic0;
    svc.submit(&a, &ic0, &b, None);
    assert_eq!(svc.stats().misses, 3, "recipe change must miss");

    // A different tolerance misses.
    let mut tight = spec.clone();
    tight.opts.tol = 1e-11;
    svc.submit(&a, &tight, &b, None);
    assert_eq!(svc.stats().misses, 4, "option change must miss");

    // And the original is still resident.
    svc.submit(&a, &spec, &b, None);
    assert_eq!(svc.stats().hits, 2);
}

/// Batches through the admission queue under concurrency: every
/// submission gets the bitwise result of its own standalone solve.
#[test]
fn concurrent_submissions_reproduce_standalone_solves() {
    let a = Arc::new(poisson_2d(12));
    let m = Jacobi::new(&a);
    let spec = SolveSpec::new(Method::Pcg, m.spec().unwrap());
    let svc = Arc::new(SolveService::default());
    let bs = rhs_family(&a, 6);
    let expected: Vec<SolveResult> = bs
        .iter()
        .map(|b| {
            solve(
                &Method::Pcg,
                &Problem::new(&a, &m, b),
                &spec.opts,
                Engine::Serial,
            )
        })
        .collect();
    let got: Vec<SolveResult> = std::thread::scope(|scope| {
        let joins: Vec<_> = bs
            .iter()
            .map(|b| {
                let svc = Arc::clone(&svc);
                let a = Arc::clone(&a);
                let spec = spec.clone();
                scope.spawn(move || svc.submit(&a, &spec, b, None))
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    for (j, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_bitwise(g, e, &format!("concurrent request {j}"));
    }
    let s = svc.stats();
    assert_eq!(s.misses, 1, "one operator, one handle build");
    assert_eq!(s.requests, 6);
}
