//! Determinism and composition suite for the adaptive-s subsystem
//! (`Method::AdaptiveCaPcg` + the `spcg-adapt` controller).
//!
//! The controller's decisions (shrink, grow, rebuild) are functions of
//! *allreduced* scalars only, so they must replay identically wherever
//! the reduction order is identical: serial ≡ one rank, and — for a fixed
//! rank count — across thread counts, transport backends, and sparse
//! formats, the whole solve is owed **bitwise**: iterate, history,
//! counters, s-schedule, and shift history. Across *different* rank
//! counts the reductions round differently, so only the decision
//! structure (schedule, rebuild targets) is owed, with the Ritz intervals
//! agreeing to rounding.
//!
//! The suite also checks the two shrink paths compose: adaptive shrink
//! (controller) under injected faults (resilience stages) must still
//! converge against one shared iteration budget, bitwise identical across
//! backends.

#![cfg(unix)]

use spcg::obs::Phase;
use spcg::prelude::*;
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_2d;
use spcg::sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
use spcg::sparse::{CsrMatrix, SparseFormat};

/// True when `SPCG_FAULTS` arms deterministic fault injection (the CI
/// fault job): exact-equality assertions stand down to residual quality.
fn faulted() -> bool {
    spcg::dist::faults_armed()
}

fn adaptive_method(s0: usize, basis: spcg::basis::BasisType) -> Method {
    Method::AdaptiveCaPcg { s: s0, basis }
}

/// The Table 2 acceptance problem: uniform spectrum at κ = 1e5 with a
/// flat rhs — fixed monomial s-step bases degrade here, so the adaptive
/// run exercises shrink *and* dynamic basis rebuilds.
fn hard_problem() -> (CsrMatrix, Vec<f64>) {
    let a = spd_with_spectrum(500, &SpectrumShape::Uniform { kappa: 1e5 }, 1.0, 3, 21);
    let n = a.nrows();
    let b = vec![1.0 / (n as f64).sqrt(); n];
    (a, b)
}

fn opts(backend: Backend, threads: usize, format: SparseFormat) -> SolveOptions {
    SolveOptions::builder()
        .tol(1e-7)
        .max_iters(8000)
        .keep_history(true)
        .build()
        .with_backend(backend)
        .with_threads(threads)
        .with_format(format)
        .with_faults(None)
}

#[test]
fn serial_equals_one_rank_bitwise() {
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = spcg::precond::Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    let method = adaptive_method(4, basis);
    let o = opts(Backend::Thread, 1, SparseFormat::Csr);
    let serial = solve(&method, &problem, &o, Engine::Serial);
    let ranked = solve(&method, &problem, &o, Engine::Ranked { ranks: 1 });
    assert!(serial.converged(), "{:?}", serial.outcome);
    if faulted() {
        assert!(ranked.true_relative_residual(&a, &b) < 1e-6);
        return;
    }
    assert_eq!(serial.x, ranked.x, "ranks=1 must be bitwise serial");
    assert_eq!(serial.iterations, ranked.iterations);
    assert_eq!(serial.history, ranked.history);
    assert_eq!(serial.s_schedule, ranked.s_schedule);
    assert_eq!(serial.adaptive, ranked.adaptive);
}

/// For a fixed rank count the decision replay is owed bitwise across
/// every thread count × transport backend × sparse format.
#[test]
fn decisions_bitwise_across_backends_threads_and_formats() {
    assert!(spcg::solvers::procexec::rankd_path().is_some());
    let (a, b) = hard_problem();
    let m = spcg::precond::Identity::new(a.nrows());
    let problem = Problem::new(&a, &m, &b);
    let method = adaptive_method(10, spcg::basis::BasisType::Monomial);
    let engine = Engine::Ranked { ranks: 2 };

    let reference = solve(
        &method,
        &problem,
        &opts(Backend::Thread, 1, SparseFormat::Csr),
        engine,
    );
    assert!(reference.converged(), "{:?}", reference.outcome);
    let ref_report = reference.adaptive.as_ref().expect("adaptive report");
    assert!(
        !ref_report.shift_history.is_empty(),
        "hard problem must force at least one rebuild — weak test otherwise"
    );
    assert!(reference.s_schedule.len() > 1, "expected s changes");

    for backend in [Backend::Thread, Backend::Proc] {
        for threads in [1usize, 2] {
            for format in [SparseFormat::Csr, SparseFormat::Sell] {
                let res = solve(&method, &problem, &opts(backend, threads, format), engine);
                let tag = format!("{backend:?} threads={threads} {format:?}");
                if faulted() {
                    assert!(res.true_relative_residual(&a, &b) < 1e-6, "{tag}");
                    continue;
                }
                assert_eq!(reference.x, res.x, "{tag}: x not bitwise");
                assert_eq!(reference.iterations, res.iterations, "{tag}: iterations");
                assert_eq!(reference.history, res.history, "{tag}: history");
                assert_eq!(reference.counters, res.counters, "{tag}: counters");
                assert_eq!(reference.s_schedule, res.s_schedule, "{tag}: s_schedule");
                assert_eq!(reference.adaptive, res.adaptive, "{tag}: adaptive report");
                assert_eq!(
                    reference.collectives_per_rank, res.collectives_per_rank,
                    "{tag}: collectives"
                );
            }
        }
    }
}

/// Across rank counts the reductions round differently; the decision
/// *structure* must still replay: same s-schedule, same rebuild count and
/// targets, Ritz intervals equal to rounding.
#[test]
fn decision_structure_stable_across_rank_counts() {
    let (a, b) = hard_problem();
    let m = spcg::precond::Identity::new(a.nrows());
    let problem = Problem::new(&a, &m, &b);
    let method = adaptive_method(10, spcg::basis::BasisType::Monomial);
    let o = opts(Backend::Thread, 1, SparseFormat::Csr);
    let serial = solve(&method, &problem, &o, Engine::Serial);
    assert!(serial.converged(), "{:?}", serial.outcome);
    let sref = serial.adaptive.as_ref().unwrap();
    for ranks in [1usize, 2, 4] {
        let res = solve(&method, &problem, &o, Engine::Ranked { ranks });
        let tag = format!("ranks={ranks}");
        assert!(res.converged(), "{tag}: {:?}", res.outcome);
        if faulted() {
            assert!(res.true_relative_residual(&a, &b) < 1e-6, "{tag}");
            continue;
        }
        assert_eq!(serial.s_schedule, res.s_schedule, "{tag}: s_schedule");
        let rep = res.adaptive.as_ref().unwrap();
        assert_eq!(
            sref.shift_history.len(),
            rep.shift_history.len(),
            "{tag}: rebuild count"
        );
        for (su, ru) in sref.shift_history.iter().zip(&rep.shift_history) {
            assert_eq!(su.iteration, ru.iteration, "{tag}: rebuild iteration");
            assert_eq!(su.basis, ru.basis, "{tag}: rebuild target");
            let rel = |p: f64, q: f64| (p - q).abs() / p.abs().max(q.abs()).max(f64::MIN_POSITIVE);
            assert!(
                rel(su.lambda_min, ru.lambda_min) < 1e-6,
                "{tag}: λ_min {} vs {}",
                su.lambda_min,
                ru.lambda_min
            );
            assert!(
                rel(su.lambda_max, ru.lambda_max) < 1e-6,
                "{tag}: λ_max {} vs {}",
                su.lambda_max,
                ru.lambda_max
            );
        }
    }
}

/// Adaptive shrink (controller) and resilience shrink (stage driver)
/// share one escalating iteration budget: a seeded-fault adaptive run
/// must converge within `max_iters` total charged iterations, stay
/// bitwise reproducible across backends, and credit the absorbed faults.
#[test]
fn adaptive_and_resilience_shrink_compose_under_faults() {
    assert!(spcg::solvers::procexec::rankd_path().is_some());
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = spcg::precond::Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let method = adaptive_method(4, spcg::basis::BasisType::Monomial);
    let engine = Engine::Ranked { ranks: 2 };
    let run = |backend| {
        let plan = spcg::dist::FaultPlan::new(7, 0.05);
        let o = SolveOptions::builder()
            .tol(1e-8)
            .build()
            .with_backend(backend)
            .with_threads(1)
            .with_faults(Some(plan));
        solve(&method, &problem, &o, engine)
    };
    let t = run(Backend::Thread);
    let p = run(Backend::Proc);
    assert!(t.faults_absorbed > 0, "plan injected nothing — weak test");
    assert!(t.converged(), "{:?}", t.outcome);
    assert!(t.true_relative_residual(&a, &b) < 1e-6);
    // One budget: the stage driver deducts each stage's iterations once;
    // the body's internal shrink restarts charge inside the stage. Total
    // charged work can therefore never exceed the configured budget.
    assert!(
        t.iterations <= SolveOptions::default().max_iters,
        "budget overdrawn: {} iterations",
        t.iterations
    );
    assert_eq!(
        t.x, p.x,
        "faulted adaptive solve not bitwise across backends"
    );
    assert_eq!(t.faults_absorbed, p.faults_absorbed, "fault crediting");
    assert_eq!(t.restarts, p.restarts, "restart counts");
    assert_eq!(t.s_schedule, p.s_schedule, "s_schedule");
    assert_eq!(t.adaptive, p.adaptive, "adaptive report");
}

/// The tracer sees the new phases: every rebuild recorded in the shift
/// history appears as a `BasisRebuild` span on every rank, `SpectralEst`
/// runs once per outer block, and the Chrome export stays well-formed
/// (matched, properly nested B/E pairs — `tracecheck`'s validator).
#[test]
fn rebuild_spans_trace_and_validate() {
    let (a, b) = hard_problem();
    let m = spcg::precond::Identity::new(a.nrows());
    let problem = Problem::new(&a, &m, &b);
    let method = adaptive_method(10, spcg::basis::BasisType::Monomial);
    let tracer = spcg::obs::Tracer::new();
    let o = opts(Backend::Thread, 1, SparseFormat::Csr).with_trace(Some(tracer.clone()));
    let res = solve(&method, &problem, &o, Engine::Ranked { ranks: 2 });
    assert!(res.converged(), "{:?}", res.outcome);
    let report = res.adaptive.as_ref().unwrap();
    assert!(!report.shift_history.is_empty(), "weak test: no rebuilds");

    let tracks = tracer.tracks();
    let solver_tracks: Vec<_> = tracks.iter().filter(|t| !t.spans.is_empty()).collect();
    assert!(!solver_tracks.is_empty());
    for track in &solver_tracks {
        let rebuilds = track.phase_spans(Phase::BasisRebuild);
        if rebuilds.is_empty() {
            continue; // helper-thread tracks carry no solver control flow
        }
        assert_eq!(
            rebuilds.len(),
            report.shift_history.len(),
            "rank {}: one BasisRebuild span per shift update",
            track.rank
        );
        // Every completed block ran one SpectralEst (rejected blocks add
        // more, so ≥), and every rebuild decision had an estimate behind it.
        let spectral = track.phase_spans(Phase::SpectralEst);
        assert!(
            spectral.len() >= res.counters.outer_iterations as usize,
            "rank {}: {} SpectralEst spans for {} blocks",
            track.rank,
            spectral.len(),
            res.counters.outer_iterations
        );
        for s in rebuilds.iter().chain(&spectral) {
            assert!(s.end_s >= s.begin_s);
        }
    }
    // Controller decisions are SPMD: every solver rank replays the same
    // rebuild spans.
    let counts: Vec<usize> = solver_tracks
        .iter()
        .map(|t| t.phase_spans(Phase::BasisRebuild).len())
        .filter(|&c| c > 0)
        .collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");

    let export = tracer.export_json(None);
    let stats = spcg::obs::validate_chrome_trace(&export).expect("export must validate");
    assert!(stats.spans > 0);
}
