//! Determinism sweep for the intra-rank parallel kernel layer.
//!
//! Every reduction in the threaded kernels uses the fixed-shape blocked
//! pairwise summation of `spcg_sparse::par`, so the floating-point result
//! depends only on the block layout — never on the thread count. These
//! tests pin that contract at the solver level: each of the six methods
//! must produce a **bitwise identical** `SolveResult` for any number of
//! intra-rank threads, alone and composed with `Engine::Ranked`.

use spcg::precond::Jacobi;
use spcg::solvers::{chebyshev_basis, solve, Engine, Method, Problem, SolveOptions};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_3d;

const S: usize = 4;

fn all_methods(problem: &Problem<'_>) -> Vec<Method> {
    let basis = chebyshev_basis(problem, 20, 0.05);
    vec![
        Method::Pcg,
        Method::Pcg3,
        Method::SPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::SPcgMon { s: S },
        Method::CaPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::CaPcg3 { s: S, basis },
    ]
}

fn assert_bitwise_equal(
    a: &spcg::solvers::SolveResult,
    b: &spcg::solvers::SolveResult,
    what: &str,
) {
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.x, b.x, "{what}: iterate not bitwise equal");
    // Parallelization must not change what work is charged.
    assert_eq!(a.counters, b.counters, "{what}: counters");
}

/// Serial engine, threads ∈ {1, 2, 4, 8}: bitwise identical solves.
///
/// n = 14³ = 2744 spans multiple reduction blocks (`REDUCE_BLOCK` = 1024),
/// so the threaded partial sums genuinely exercise the pairwise combine.
#[test]
fn all_methods_bitwise_identical_across_thread_counts() {
    let a = poisson_3d(14);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default();
    for method in all_methods(&problem) {
        let base = solve(
            &method,
            &problem,
            &opts.clone().with_threads(1),
            Engine::Serial,
        );
        assert!(
            base.converged(),
            "{} threads=1: {:?}",
            method.name(),
            base.outcome
        );
        for t in [2usize, 4, 8] {
            let res = solve(
                &method,
                &problem,
                &opts.clone().with_threads(t),
                Engine::Serial,
            );
            assert_bitwise_equal(&base, &res, &format!("{} threads={t}", method.name()));
        }
    }
}

/// Threads compose with rank parallelism: for each rank count, every
/// thread count reproduces the single-threaded ranked run bit for bit.
#[test]
fn threads_compose_with_ranked_engine() {
    let a = poisson_3d(12);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default();
    for method in all_methods(&problem) {
        for ranks in [2usize, 4] {
            let engine = Engine::Ranked { ranks };
            let base = solve(&method, &problem, &opts.clone().with_threads(1), engine);
            assert!(
                base.converged(),
                "{} ranks={ranks} threads=1: {:?}",
                method.name(),
                base.outcome
            );
            for t in [2usize, 4] {
                let res = solve(&method, &problem, &opts.clone().with_threads(t), engine);
                assert_bitwise_equal(
                    &base,
                    &res,
                    &format!("{} ranks={ranks} threads={t}", method.name()),
                );
            }
        }
    }
}
