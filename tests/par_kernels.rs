//! Determinism sweep for the intra-rank parallel kernel layer.
//!
//! Every reduction in the threaded kernels uses the fixed-shape blocked
//! pairwise summation of `spcg_sparse::par`, so the floating-point result
//! depends only on the block layout — never on the thread count. These
//! tests pin that contract at the solver level: each of the six methods
//! must produce a **bitwise identical** `SolveResult` for any number of
//! intra-rank threads, alone and composed with `Engine::Ranked`.

use spcg::precond::Jacobi;
use spcg::solvers::{
    chebyshev_basis, solve, solve_batch, BatchRequest, Engine, Method, Problem, SolveOptions,
};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_3d;
use spcg::sparse::SparseFormat;

const S: usize = 4;

fn all_methods(problem: &Problem<'_>) -> Vec<Method> {
    let basis = chebyshev_basis(problem, 20, 0.05);
    vec![
        Method::Pcg,
        Method::Pcg3,
        Method::SPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::SPcgMon { s: S },
        Method::CaPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::CaPcg3 { s: S, basis },
    ]
}

fn assert_bitwise_equal(
    a: &spcg::solvers::SolveResult,
    b: &spcg::solvers::SolveResult,
    what: &str,
) {
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.x, b.x, "{what}: iterate not bitwise equal");
    // Parallelization must not change what work is charged.
    assert_eq!(a.counters, b.counters, "{what}: counters");
}

/// Serial engine, threads ∈ {1, 2, 4, 8}: bitwise identical solves.
///
/// n = 14³ = 2744 spans multiple reduction blocks (`REDUCE_BLOCK` = 1024),
/// so the threaded partial sums genuinely exercise the pairwise combine.
#[test]
fn all_methods_bitwise_identical_across_thread_counts() {
    let a = poisson_3d(14);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default();
    for method in all_methods(&problem) {
        let base = solve(
            &method,
            &problem,
            &opts.clone().with_threads(1),
            Engine::Serial,
        );
        assert!(
            base.converged(),
            "{} threads=1: {:?}",
            method.name(),
            base.outcome
        );
        for t in [2usize, 4, 8] {
            let res = solve(
                &method,
                &problem,
                &opts.clone().with_threads(t),
                Engine::Serial,
            );
            assert_bitwise_equal(&base, &res, &format!("{} threads={t}", method.name()));
        }
    }
}

/// Threads compose with rank parallelism: for each rank count, every
/// thread count reproduces the single-threaded ranked run bit for bit.
#[test]
fn threads_compose_with_ranked_engine() {
    let a = poisson_3d(12);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default();
    for method in all_methods(&problem) {
        for ranks in [2usize, 4] {
            let engine = Engine::Ranked { ranks };
            let base = solve(&method, &problem, &opts.clone().with_threads(1), engine);
            assert!(
                base.converged(),
                "{} ranks={ranks} threads=1: {:?}",
                method.name(),
                base.outcome
            );
            for t in [2usize, 4] {
                let res = solve(&method, &problem, &opts.clone().with_threads(t), engine);
                assert_bitwise_equal(
                    &base,
                    &res,
                    &format!("{} ranks={ranks} threads={t}", method.name()),
                );
            }
        }
    }
}

/// The blocked multi-RHS path keeps the determinism contract at every
/// batch width: for k ∈ {2, 4, 8}, both sparse formats, the batched solve
/// is bitwise identical across thread counts — and every column matches
/// its own single-threaded standalone solve.
#[test]
fn batched_multi_rhs_bitwise_identical_across_thread_counts() {
    let a = poisson_3d(14);
    let m = Jacobi::new(&a);
    let base_b = paper_rhs(&a);
    for k in [2usize, 4, 8] {
        let bs: Vec<Vec<f64>> = (0..k)
            .map(|j| base_b.iter().map(|v| v * (1.0 + j as f64)).collect())
            .collect();
        let reqs: Vec<BatchRequest<'_>> = bs.iter().map(|b| BatchRequest::new(b)).collect();
        for format in [SparseFormat::Csr, SparseFormat::Sell] {
            let opts = SolveOptions::default().with_format(format);
            let base = solve_batch(
                &Method::Pcg,
                &a,
                &m,
                &reqs,
                &opts.clone().with_threads(1),
                Engine::Serial,
            );
            for (j, (res, b)) in base.iter().zip(&bs).enumerate() {
                assert!(res.converged(), "k={k} col {j}: {:?}", res.outcome);
                let standalone = solve(
                    &Method::Pcg,
                    &Problem::new(&a, &m, b),
                    &opts.clone().with_threads(1),
                    Engine::Serial,
                );
                assert_bitwise_equal(
                    res,
                    &standalone,
                    &format!("k={k} col {j} {format:?} vs standalone"),
                );
            }
            for t in [2usize, 4, 8] {
                let threaded = solve_batch(
                    &Method::Pcg,
                    &a,
                    &m,
                    &reqs,
                    &opts.clone().with_threads(t),
                    Engine::Serial,
                );
                for (j, (res, one)) in threaded.iter().zip(&base).enumerate() {
                    assert_bitwise_equal(
                        res,
                        one,
                        &format!("k={k} col {j} {format:?} threads={t}"),
                    );
                }
            }
        }
    }
}
