//! Cross-backend parity: the proc backend (worker processes over
//! Unix-domain sockets) must be **bitwise identical** to the thread
//! backend — same iterates, same history, same operation counters — for
//! every method, rank count, and thread count.
//!
//! Backends are selected explicitly via [`SolveOptions::with_backend`],
//! never via `SPCG_BACKEND`, so the suite behaves identically under the
//! CI proc job's environment. The suite requires the `spcg-rankd` worker
//! binary (built alongside the test by any workspace build); a missing
//! binary fails loudly instead of silently testing thread-vs-thread.

#![cfg(unix)]

use spcg::prelude::*;
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_2d;

fn all_methods(problem: &Problem<'_>) -> Vec<(&'static str, Method)> {
    let basis = spcg::solvers::chebyshev_basis(problem, 20, 0.05);
    vec![
        ("pcg", Method::Pcg),
        ("pcg3", Method::Pcg3),
        (
            "spcg",
            Method::SPcg {
                s: 4,
                basis: basis.clone(),
            },
        ),
        ("spcg_mon", Method::SPcgMon { s: 4 }),
        (
            "capcg",
            Method::CaPcg {
                s: 4,
                basis: basis.clone(),
            },
        ),
        (
            "capcg3",
            Method::CaPcg3 {
                s: 4,
                basis: basis.clone(),
            },
        ),
        ("capcg_gs", Method::CaPcgGs { s: 4, basis }),
        ("ekcg", Method::EkCg { t: 4 }),
    ]
}

fn opts(backend: Backend, threads: usize) -> SolveOptions {
    SolveOptions::builder()
        .tol(1e-8)
        .keep_history(true)
        .build()
        .with_backend(backend)
        .with_threads(threads)
        .with_faults(None)
}

/// The proc tests are meaningless if `run_proc` silently falls back to
/// threads, so the worker binary must be locatable.
#[test]
fn rankd_binary_is_available() {
    assert!(
        spcg::solvers::procexec::rankd_path().is_some(),
        "spcg-rankd not found: run a workspace build first (or set SPCG_RANKD)"
    );
}

#[test]
fn proc_backend_is_bitwise_identical_to_thread_backend() {
    assert!(spcg::solvers::procexec::rankd_path().is_some());
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = spcg::precond::Jacobi::new(&a);
    let problem = Problem::try_new(&a, &m, &b).unwrap();
    for (name, method) in all_methods(&problem) {
        for ranks in [1, 2, 4] {
            for threads in [1, 2] {
                let engine = Engine::Ranked { ranks };
                let t = solve(&method, &problem, &opts(Backend::Thread, threads), engine);
                let p = solve(&method, &problem, &opts(Backend::Proc, threads), engine);
                let tag = format!("{name} ranks={ranks} threads={threads}");
                assert_eq!(t.outcome, p.outcome, "{tag}: outcome");
                assert_eq!(t.iterations, p.iterations, "{tag}: iterations");
                assert_eq!(t.x, p.x, "{tag}: solution not bitwise identical");
                assert_eq!(t.history, p.history, "{tag}: residual history");
                assert_eq!(t.counters, p.counters, "{tag}: counters");
                assert_eq!(
                    t.collectives_per_rank, p.collectives_per_rank,
                    "{tag}: collectives per rank"
                );
                assert!(t.converged(), "{tag}: did not converge");
            }
        }
    }
}

/// Other-preconditioner coverage for the Setup codec: every serializable
/// spec kind round-trips through a worker process and still matches the
/// thread backend bitwise.
#[test]
fn proc_backend_parity_holds_for_every_preconditioner() {
    assert!(spcg::solvers::procexec::rankd_path().is_some());
    let a = std::sync::Arc::new(poisson_2d(12));
    let b = paper_rhs(&a);
    let engine = Engine::Ranked { ranks: 2 };
    let preconds: Vec<(&str, Box<dyn spcg::precond::Preconditioner>)> = vec![
        (
            "identity",
            Box::new(spcg::precond::Identity::new(a.nrows())),
        ),
        ("jacobi", Box::new(spcg::precond::Jacobi::new(&a))),
        (
            "block_jacobi",
            Box::new(spcg::precond::BlockJacobi::new(&a, 12)),
        ),
        (
            "chebyshev",
            Box::new(spcg::precond::ChebyshevPrecond::new(
                std::sync::Arc::clone(&a),
                3,
                0.05,
                8.0,
            )),
        ),
        ("ssor", Box::new(spcg::precond::Ssor::new(&a, 1.2))),
        ("ic0", Box::new(spcg::precond::Ic0::new(&a))),
    ];
    for (name, m) in &preconds {
        let problem = Problem::try_new(&a, m.as_ref(), &b).unwrap();
        let t = solve(&Method::Pcg, &problem, &opts(Backend::Thread, 1), engine);
        let p = solve(&Method::Pcg, &problem, &opts(Backend::Proc, 1), engine);
        assert_eq!(t.x, p.x, "{name}: solution not bitwise identical");
        assert_eq!(t.counters, p.counters, "{name}: counters");
        assert!(t.converged(), "{name}: did not converge");
    }
}

/// Injected faults decide from `(seed, site, rank, round)` on the worker
/// side exactly as on the thread side, so even a faulted, self-healing
/// solve is bitwise reproducible across backends — and the absorbed
/// faults are credited back to the parent's plan.
#[test]
fn proc_backend_parity_holds_under_injected_faults() {
    assert!(spcg::solvers::procexec::rankd_path().is_some());
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = spcg::precond::Jacobi::new(&a);
    let problem = Problem::try_new(&a, &m, &b).unwrap();
    let engine = Engine::Ranked { ranks: 2 };
    let run = |backend| {
        let plan = spcg::dist::FaultPlan::new(7, 0.05);
        let o = SolveOptions::builder()
            .tol(1e-8)
            .build()
            .with_backend(backend)
            .with_threads(1)
            .with_faults(Some(plan));
        solve(&Method::SPcgMon { s: 4 }, &problem, &o, engine)
    };
    let t = run(Backend::Thread);
    let p = run(Backend::Proc);
    assert!(t.faults_absorbed > 0, "plan injected nothing — weak test");
    assert_eq!(t.x, p.x, "faulted solve not bitwise identical");
    assert_eq!(t.faults_absorbed, p.faults_absorbed, "fault crediting");
    assert_eq!(t.restarts, p.restarts, "restart counts");
    assert!(t.converged() && p.converged());
}

/// Span tracing crosses the process boundary: a traced proc solve imports
/// one track per rank, with the same phase vocabulary as a thread solve.
#[test]
fn proc_backend_ships_trace_tracks_home() {
    assert!(spcg::solvers::procexec::rankd_path().is_some());
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = spcg::precond::Jacobi::new(&a);
    let problem = Problem::try_new(&a, &m, &b).unwrap();
    let tracer = spcg::obs::Tracer::new();
    let o = SolveOptions::builder()
        .tol(1e-8)
        .build()
        .with_backend(Backend::Proc)
        .with_threads(1)
        .with_faults(None)
        .with_trace(Some(tracer.clone()));
    let res = solve(&Method::Pcg, &problem, &o, Engine::Ranked { ranks: 2 });
    assert!(res.converged());
    let tracks = tracer.tracks();
    let ranks: std::collections::BTreeSet<usize> = tracks.iter().map(|t| t.rank).collect();
    assert_eq!(
        ranks,
        [0usize, 1].into_iter().collect(),
        "one track per rank"
    );
    assert!(
        tracks.iter().all(|t| !t.spans.is_empty()),
        "remote tracks carry spans"
    );
}
