//! Property-based tests (proptest) over the core data structures and
//! numerical invariants.

use proptest::prelude::*;
use spcg::basis::poly::BasisParams;
use spcg::basis::{cob, leja};
use spcg::sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
use spcg::sparse::partition::BlockRowPartition;
use spcg::sparse::smallsolve::{Cholesky, Lu};
use spcg::sparse::{blas, CooMatrix, DenseMat};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_to_csr_preserves_entry_sums(
        entries in prop::collection::vec((0usize..12, 0usize..12, -10.0f64..10.0), 0..60)
    ) {
        let mut coo = CooMatrix::new(12, 12);
        let mut dense = vec![vec![0.0f64; 12]; 12];
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
            dense[i][j] += v;
        }
        let csr = coo.to_csr();
        for i in 0..12 {
            for j in 0..12 {
                prop_assert!((csr.get(i, j) - dense[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spmv_is_linear(
        seed in 0u64..1000,
        alpha in -3.0f64..3.0,
    ) {
        let a = spd_with_spectrum(40, &SpectrumShape::Uniform { kappa: 50.0 }, 1.0, 2, seed);
        let x: Vec<f64> = (0..40).map(|i| ((i * 7 + seed as usize) % 11) as f64 - 5.0).collect();
        let y: Vec<f64> = (0..40).map(|i| ((i * 3) % 13) as f64 - 6.0).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + alpha * q).collect();
        let mut ax = vec![0.0; 40];
        let mut ay = vec![0.0; 40];
        let mut ac = vec![0.0; 40];
        a.spmv(&x, &mut ax);
        a.spmv(&y, &mut ay);
        a.spmv(&combo, &mut ac);
        for i in 0..40 {
            prop_assert!((ac[i] - (ax[i] + alpha * ay[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn generated_spd_quadratic_form_positive(seed in 0u64..500) {
        let a = spd_with_spectrum(30, &SpectrumShape::LogUniform { kappa: 1e3, jitter: 0.2 }, 1.0, 3, seed);
        let x: Vec<f64> = (0..30).map(|i| ((i as u64 * 31 + seed) % 17) as f64 - 8.0).collect();
        if x.iter().any(|&v| v != 0.0) {
            let mut ax = vec![0.0; 30];
            a.spmv(&x, &mut ax);
            let q = blas::dot(&x, &ax);
            prop_assert!(q > 0.0, "quadratic form {q}");
        }
    }

    #[test]
    fn cholesky_solves_generated_spd_gram(vals in prop::collection::vec(-2.0f64..2.0, 20)) {
        // Build SPD as GᵀG + I from a random 4x5 G.
        let g = DenseMat::from_row_major(4, 5, vals);
        let mut a = g.transpose().matmul(&g);
        for i in 0..5 {
            a[(i, i)] += 1.0;
        }
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0, -1.0];
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_matches_cholesky_on_spd(vals in prop::collection::vec(-2.0f64..2.0, 12)) {
        let g = DenseMat::from_row_major(4, 3, vals);
        let mut a = g.transpose().matmul(&g);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let b = vec![1.0, 2.0, 3.0];
        let x1 = Cholesky::factor(&a).unwrap().solve(&b);
        let x2 = Lu::factor(&a).unwrap().solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn basis_eval_satisfies_cob_recurrence(
        lo in 0.05f64..0.5,
        width in 0.5f64..3.0,
        z in -1.0f64..4.0,
    ) {
        let params = BasisParams::chebyshev(lo, lo + width, 6);
        let b = cob::b_small(&params, 6);
        let p = params.eval_all(z);
        for j in 0..5 {
            let mut acc = 0.0;
            for l in 0..6 {
                acc += p[l] * b[(l, j)];
            }
            let want = z * p[j];
            prop_assert!((acc - want).abs() < 1e-9 * (1.0 + want.abs()), "z={z} col={j}");
        }
    }

    #[test]
    fn leja_order_is_permutation(vals in prop::collection::vec(0.01f64..100.0, 1..30)) {
        let ordered = leja::leja_order(&vals);
        let mut a = vals.clone();
        let mut b = ordered.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn partition_is_disjoint_cover(n in 1usize..500, parts in 1usize..32) {
        let p = BlockRowPartition::balanced(n, parts);
        let mut seen = vec![false; n];
        for q in 0..p.nparts() {
            let (lo, hi) = p.range(q);
            for r in lo..hi {
                prop_assert!(!seen[r], "row {r} covered twice");
                seen[r] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        for r in 0..n {
            let o = p.owner(r);
            let (lo, hi) = p.range(o);
            prop_assert!(r >= lo && r < hi);
        }
    }

    #[test]
    fn pcg_solves_random_spd_to_tolerance(seed in 0u64..200) {
        use spcg::precond::Jacobi;
        use spcg::solvers::{pcg, Problem, SolveOptions};
        use spcg::sparse::generators::paper_rhs;
        let a = spd_with_spectrum(120, &SpectrumShape::Geometric { kappa: 500.0 }, 1.0, 3, seed);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = pcg(&problem, &SolveOptions::default().with_tol(1e-8));
        prop_assert!(res.converged());
        prop_assert!(res.true_relative_residual(&a, &b) < 1e-6);
    }

    #[test]
    fn spcg_agrees_with_pcg_on_easy_random_problems(seed in 0u64..50, s in 2usize..6) {
        use spcg::precond::Jacobi;
        use spcg::solvers::{pcg, spcg as run_spcg, Problem, SolveOptions};
        use spcg::sparse::generators::paper_rhs;
        let a = spd_with_spectrum(100, &SpectrumShape::Geometric { kappa: 100.0 }, 1.0, 2, seed);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-7);
        let basis = spcg::solvers::chebyshev_basis(&problem, 15, 0.1);
        let r1 = pcg(&problem, &opts);
        let r2 = run_spcg(&problem, s, &basis, &opts);
        prop_assert!(r1.converged() && r2.converged());
        // s-rounding plus the paper's "not significant" slack.
        prop_assert!(r2.iterations <= ((r1.iterations + s) / s) * s + 2 * s);
    }
}
