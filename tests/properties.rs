//! Randomized property tests over the core data structures and numerical
//! invariants. Each test sweeps a deterministic family of random cases
//! drawn from the workspace's own seeded PRNG ([`spcg::sparse::rng::Rng64`]),
//! so failures are exactly reproducible from the printed case index.

use spcg::basis::poly::BasisParams;
use spcg::basis::{cob, leja};
use spcg::sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
use spcg::sparse::partition::BlockRowPartition;
use spcg::sparse::rng::Rng64;
use spcg::sparse::smallsolve::{Cholesky, Lu};
use spcg::sparse::{blas, CooMatrix, DenseMat};

#[test]
fn coo_to_csr_preserves_entry_sums() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0001);
    for case in 0..64 {
        let nentries = rng.below_inclusive(59);
        let mut coo = CooMatrix::new(12, 12);
        let mut dense = vec![vec![0.0f64; 12]; 12];
        for _ in 0..nentries {
            let i = rng.below_inclusive(11);
            let j = rng.below_inclusive(11);
            let v = rng.range_f64(-10.0, 10.0);
            coo.push(i, j, v);
            dense[i][j] += v;
        }
        let csr = coo.to_csr();
        for i in 0..12 {
            for j in 0..12 {
                assert!(
                    (csr.get(i, j) - dense[i][j]).abs() < 1e-12,
                    "case {case}: mismatch at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn spmv_is_linear() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0002);
    for case in 0..32 {
        let seed = rng.next_u64() % 1000;
        let alpha = rng.range_f64(-3.0, 3.0);
        let a = spd_with_spectrum(40, &SpectrumShape::Uniform { kappa: 50.0 }, 1.0, 2, seed);
        let x: Vec<f64> = (0..40)
            .map(|i| ((i * 7 + seed as usize) % 11) as f64 - 5.0)
            .collect();
        let y: Vec<f64> = (0..40).map(|i| ((i * 3) % 13) as f64 - 6.0).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + alpha * q).collect();
        let mut ax = vec![0.0; 40];
        let mut ay = vec![0.0; 40];
        let mut ac = vec![0.0; 40];
        a.spmv(&x, &mut ax);
        a.spmv(&y, &mut ay);
        a.spmv(&combo, &mut ac);
        for i in 0..40 {
            assert!(
                (ac[i] - (ax[i] + alpha * ay[i])).abs() < 1e-9,
                "case {case} row {i}"
            );
        }
    }
}

#[test]
fn generated_spd_quadratic_form_positive() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0003);
    for case in 0..32 {
        let seed = rng.next_u64() % 500;
        let a = spd_with_spectrum(
            30,
            &SpectrumShape::LogUniform {
                kappa: 1e3,
                jitter: 0.2,
            },
            1.0,
            3,
            seed,
        );
        let x: Vec<f64> = (0..30)
            .map(|i| ((i as u64 * 31 + seed) % 17) as f64 - 8.0)
            .collect();
        if x.iter().any(|&v| v != 0.0) {
            let mut ax = vec![0.0; 30];
            a.spmv(&x, &mut ax);
            let q = blas::dot(&x, &ax);
            assert!(q > 0.0, "case {case}: quadratic form {q}");
        }
    }
}

#[test]
fn cholesky_solves_generated_spd_gram() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0004);
    for case in 0..64 {
        // Build SPD as GᵀG + I from a random 4x5 G.
        let vals: Vec<f64> = (0..20).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let g = DenseMat::from_row_major(4, 5, vals);
        let mut a = g.transpose().matmul(&g);
        for i in 0..5 {
            a[(i, i)] += 1.0;
        }
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0, -1.0];
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn lu_matches_cholesky_on_spd() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0005);
    for case in 0..64 {
        let vals: Vec<f64> = (0..12).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let g = DenseMat::from_row_major(4, 3, vals);
        let mut a = g.transpose().matmul(&g);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let b = vec![1.0, 2.0, 3.0];
        let x1 = Cholesky::factor(&a).unwrap().solve(&b);
        let x2 = Lu::factor(&a).unwrap().solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-8, "case {case}");
        }
    }
}

#[test]
fn basis_eval_satisfies_cob_recurrence() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0006);
    for case in 0..64 {
        let lo = rng.range_f64(0.05, 0.5);
        let width = rng.range_f64(0.5, 3.0);
        let z = rng.range_f64(-1.0, 4.0);
        let params = BasisParams::chebyshev(lo, lo + width, 6);
        let b = cob::b_small(&params, 6);
        let p = params.eval_all(z);
        for j in 0..5 {
            let mut acc = 0.0;
            for l in 0..6 {
                acc += p[l] * b[(l, j)];
            }
            let want = z * p[j];
            assert!(
                (acc - want).abs() < 1e-9 * (1.0 + want.abs()),
                "case {case}: z={z} col={j}"
            );
        }
    }
}

#[test]
fn leja_order_is_permutation() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0007);
    for case in 0..64 {
        let len = 1 + rng.below_inclusive(28);
        let vals: Vec<f64> = (0..len).map(|_| rng.range_f64(0.01, 100.0)).collect();
        let ordered = leja::leja_order(&vals);
        let mut a = vals.clone();
        let mut b = ordered.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn partition_is_disjoint_cover() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0008);
    for case in 0..64 {
        let n = 1 + rng.below_inclusive(498);
        let parts = 1 + rng.below_inclusive(30);
        let p = BlockRowPartition::balanced(n, parts);
        let mut seen = vec![false; n];
        for q in 0..p.nparts() {
            let (lo, hi) = p.range(q);
            for r in lo..hi {
                assert!(!seen[r], "case {case}: row {r} covered twice");
                seen[r] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s), "case {case}");
        for r in 0..n {
            let o = p.owner(r);
            let (lo, hi) = p.range(o);
            assert!(r >= lo && r < hi, "case {case}");
        }
    }
}

#[test]
fn pcg_solves_random_spd_to_tolerance() {
    use spcg::precond::Jacobi;
    use spcg::solvers::{pcg, Problem, SolveOptions};
    use spcg::sparse::generators::paper_rhs;
    let mut rng = Rng64::seed_from_u64(0x5eed_0009);
    for case in 0..16 {
        let seed = rng.next_u64() % 200;
        let a = spd_with_spectrum(
            120,
            &SpectrumShape::Geometric { kappa: 500.0 },
            1.0,
            3,
            seed,
        );
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = pcg(&problem, &SolveOptions::default().with_tol(1e-8));
        assert!(res.converged(), "case {case} (seed {seed})");
        assert!(
            res.true_relative_residual(&a, &b) < 1e-6,
            "case {case} (seed {seed})"
        );
    }
}

#[test]
fn gs_solve_matches_cholesky_on_random_spd_systems() {
    use spcg::sparse::smallsolve::{gs_solve, Cholesky};
    let mut rng = Rng64::seed_from_u64(0x5eed_000b);
    for case in 0..64 {
        let vals: Vec<f64> = (0..20).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let g = DenseMat::from_row_major(4, 5, vals);
        let mut a = g.transpose().matmul(&g);
        for i in 0..5 {
            a[(i, i)] += 0.5;
        }
        let b: Vec<f64> = (0..5).map(|_| rng.range_f64(-3.0, 3.0)).collect();
        let x1 = Cholesky::factor(&a).unwrap().solve(&b);
        let (x2, sweeps) = gs_solve(&a, &b, None, 200, 1e-14).unwrap();
        assert!(sweeps > 0, "case {case}: free lunch");
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-8, "case {case}: {p} vs {q}");
        }
    }
}

#[test]
fn capcg_gs_agrees_with_pcg_on_easy_random_problems() {
    use spcg::precond::Jacobi;
    use spcg::solvers::{capcg_gs, pcg, Problem, SolveOptions};
    use spcg::sparse::generators::paper_rhs;
    let mut rng = Rng64::seed_from_u64(0x5eed_000c);
    for case in 0..8 {
        let seed = rng.next_u64() % 50;
        let s = 2 + rng.below_inclusive(3);
        let a = spd_with_spectrum(
            100,
            &SpectrumShape::Geometric { kappa: 100.0 },
            1.0,
            2,
            seed,
        );
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-7);
        let basis = spcg::solvers::chebyshev_basis(&problem, 15, 0.1);
        let r1 = pcg(&problem, &opts);
        let r2 = capcg_gs(&problem, s, &basis, &opts);
        assert!(
            r1.converged() && r2.converged(),
            "case {case} (seed {seed}, s {s})"
        );
        // Same slack as the Cholesky-path s-step methods: inexact inner
        // solves may cost an extra block or two, never a regime change.
        assert!(
            r2.iterations <= ((r1.iterations + s) / s) * s + 2 * s,
            "case {case} (seed {seed}, s {s}): {} vs {}",
            r2.iterations,
            r1.iterations
        );
        assert!(
            r2.true_relative_residual(&a, &b) < 1e-5,
            "case {case} (seed {seed}, s {s})"
        );
    }
}

#[test]
fn ekcg_solves_random_spd_for_every_block_count() {
    use spcg::precond::Jacobi;
    use spcg::solvers::{ekcg, Problem, SolveOptions};
    let mut rng = Rng64::seed_from_u64(0x5eed_000d);
    for case in 0..8 {
        let seed = rng.next_u64() % 50;
        let a = spd_with_spectrum(
            100,
            &SpectrumShape::Geometric { kappa: 100.0 },
            1.0,
            2,
            seed,
        );
        // A dense rhs: enlarged-space methods need excitation in every
        // coordinate block (an impulse rhs makes T(r) rank-deficient).
        let b: Vec<f64> = (0..100)
            .map(|i| 1.0 + 0.5 * ((i as f64) * 0.7).sin())
            .collect();
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-7);
        for t in [1usize, 2, 4] {
            let res = ekcg(&problem, t, &opts);
            assert!(res.converged(), "case {case} (seed {seed}, t {t})");
            assert!(
                res.true_relative_residual(&a, &b) < 1e-5,
                "case {case} (seed {seed}, t {t})"
            );
        }
    }
}

#[test]
fn spcg_agrees_with_pcg_on_easy_random_problems() {
    use spcg::precond::Jacobi;
    use spcg::solvers::{pcg, spcg as run_spcg, Problem, SolveOptions};
    use spcg::sparse::generators::paper_rhs;
    let mut rng = Rng64::seed_from_u64(0x5eed_000a);
    for case in 0..12 {
        let seed = rng.next_u64() % 50;
        let s = 2 + rng.below_inclusive(3);
        let a = spd_with_spectrum(
            100,
            &SpectrumShape::Geometric { kappa: 100.0 },
            1.0,
            2,
            seed,
        );
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-7);
        let basis = spcg::solvers::chebyshev_basis(&problem, 15, 0.1);
        let r1 = pcg(&problem, &opts);
        let r2 = run_spcg(&problem, s, &basis, &opts);
        assert!(
            r1.converged() && r2.converged(),
            "case {case} (seed {seed}, s {s})"
        );
        // s-rounding plus the paper's "not significant" slack.
        assert!(
            r2.iterations <= ((r1.iterations + s) / s) * s + 2 * s,
            "case {case} (seed {seed}, s {s}): {} vs {}",
            r2.iterations,
            r1.iterations
        );
    }
}
