//! Cross-crate integration tests: every solver on every problem family,
//! verified against the true residual and against each other.

use spcg::basis::BasisType;
use spcg::precond::{BlockJacobi, ChebyshevPrecond, Identity, Jacobi, Preconditioner, Ssor};
use spcg::solvers::{solve, Engine, Method, Problem, SolveOptions, StoppingCriterion};
use spcg::sparse::generators::anisotropic::anisotropic_2d;
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::{poisson_1d, poisson_2d, poisson_3d};
use spcg::sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
use std::sync::Arc;

fn all_methods(problem: &Problem<'_>, s: usize) -> Vec<Method> {
    let basis = spcg::solvers::chebyshev_basis(problem, 25, 0.1);
    vec![
        Method::Pcg,
        Method::Pcg3,
        Method::SPcg {
            s,
            basis: basis.clone(),
        },
        Method::SPcgMon { s },
        Method::CaPcg {
            s,
            basis: basis.clone(),
        },
        Method::CaPcg3 { s, basis },
    ]
}

#[test]
fn every_method_solves_every_easy_family() {
    let problems: Vec<(&str, spcg::sparse::CsrMatrix)> = vec![
        ("poisson1d", poisson_1d(200)),
        ("poisson2d", poisson_2d(20)),
        ("poisson3d", poisson_3d(8)),
        ("anisotropic", anisotropic_2d(16, 0.3)),
        (
            "random_spd",
            spd_with_spectrum(400, &SpectrumShape::Geometric { kappa: 200.0 }, 1.0, 3, 1),
        ),
    ];
    for (name, a) in problems {
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-7);
        for method in all_methods(&problem, 4) {
            let res = solve(&method, &problem, &opts, Engine::Serial);
            assert!(
                res.converged(),
                "{name}/{}: {:?}",
                method.name(),
                res.outcome
            );
            assert!(
                res.true_relative_residual(&a, &b) < 1e-6,
                "{name}/{}: residual {:.2e}",
                method.name(),
                res.true_relative_residual(&a, &b)
            );
        }
    }
}

#[test]
fn all_preconditioners_work_with_spcg() {
    let a = Arc::new(poisson_2d(18));
    let b = paper_rhs(&a);
    let preconds: Vec<Box<dyn Preconditioner>> = vec![
        Box::new(Identity::new(a.nrows())),
        Box::new(Jacobi::new(&a)),
        Box::new(BlockJacobi::new(&a, 18)),
        Box::new(Ssor::new(&a, 1.0)),
        Box::new(ChebyshevPrecond::from_matrix(Arc::clone(&a), 3, 30.0)),
    ];
    for m in &preconds {
        let problem = Problem::new(&a, m.as_ref(), &b);
        let basis = spcg::solvers::chebyshev_basis(&problem, 25, 0.1);
        let res = spcg::solvers::spcg(&problem, 5, &basis, &SolveOptions::default().with_tol(1e-7));
        assert!(res.converged(), "{}: {:?}", m.name(), res.outcome);
    }
}

#[test]
fn solution_matches_across_methods() {
    // All methods solve the same system: solutions agree to the tolerance.
    let a = poisson_2d(16);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default().with_tol(1e-9);
    let reference = solve(&Method::Pcg, &problem, &opts, Engine::Serial);
    for method in all_methods(&problem, 5) {
        let res = solve(&method, &problem, &opts, Engine::Serial);
        assert!(res.converged(), "{}", method.name());
        let diff: f64 = res
            .x
            .iter()
            .zip(&reference.x)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(
            diff < 1e-6,
            "{}: solutions differ by {diff:.2e}",
            method.name()
        );
    }
}

#[test]
fn s_step_methods_use_one_collective_per_s_steps() {
    let a = poisson_2d(16);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default()
        .with_criterion(StoppingCriterion::PrecondMNorm)
        .with_tol(1e-8);
    let pcg = solve(&Method::Pcg, &problem, &opts, Engine::Serial);
    let s = 8;
    for method in all_methods(&problem, s).into_iter().skip(2) {
        let res = solve(&method, &problem, &opts, Engine::Serial);
        if !res.converged() {
            continue; // monomial may legitimately fail
        }
        let per_step = res.counters.global_collectives as f64 / res.iterations as f64;
        let pcg_per_step = pcg.counters.global_collectives as f64 / pcg.iterations as f64;
        assert!(
            per_step < pcg_per_step / (s as f64),
            "{}: {per_step} vs PCG {pcg_per_step}",
            method.name()
        );
    }
}

#[test]
fn matrix_market_roundtrip_preserves_solve() {
    let a = poisson_2d(12);
    let path = std::env::temp_dir().join("spcg_e2e_roundtrip.mtx");
    spcg::sparse::io::write_matrix_market(&a, &path).unwrap();
    let a2 = spcg::sparse::io::read_matrix_market(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let m2 = Jacobi::new(&a2);
    let r1 = spcg::solvers::pcg(&Problem::new(&a, &m, &b), &SolveOptions::default());
    let r2 = spcg::solvers::pcg(&Problem::new(&a2, &m2, &b), &SolveOptions::default());
    assert_eq!(r1.iterations, r2.iterations);
}

#[test]
fn parallel_and_serial_agree_end_to_end() {
    let a = poisson_2d(20);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default()
        .with_criterion(StoppingCriterion::RecursiveResidual2Norm)
        .with_tol(1e-8)
        .with_max_iters(12_000);
    let serial = spcg::solvers::pcg(&problem, &opts);
    let par = solve(&Method::Pcg, &problem, &opts, Engine::Ranked { ranks: 6 });
    assert!(serial.converged() && par.converged());
    // Under injected faults (SPCG_FAULTS) the ranked solve restarts its way
    // to convergence; the equality checks below hold fault-free.
    let faulted = spcg::dist::faults_armed();
    if !faulted {
        assert_eq!(serial.iterations, par.iterations);
    }
    let basis = spcg::solvers::chebyshev_basis(&problem, 25, 0.1);
    let par_s = solve(
        &Method::SPcg {
            s: 5,
            basis: basis.clone(),
        },
        &problem,
        &opts,
        Engine::Ranked { ranks: 6 },
    );
    assert!(par_s.converged());
    if !faulted {
        for (p, q) in par_s.x.iter().zip(&serial.x) {
            assert!((p - q).abs() < 1e-5);
        }
    }
}

#[test]
fn adaptive_spcg_end_to_end() {
    let a = spd_with_spectrum(
        600,
        &SpectrumShape::LogUniform {
            kappa: 1e4,
            jitter: 0.1,
        },
        1.0,
        3,
        3,
    );
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let out = spcg::solvers::adaptive::adaptive_spcg(
        &problem,
        10,
        &BasisType::Monomial,
        &SolveOptions::default()
            .with_tol(1e-6)
            .with_max_iters(30_000)
            .with_history(),
    );
    // Monomial s=10 breaks; the adaptive schedule must fall back and the
    // final answer (if converged) must be genuine.
    if out.result.converged() {
        assert!(out.result.true_relative_residual(&a, &b) < 1e-4);
    }
    assert!(!out.stages.is_empty());
}
