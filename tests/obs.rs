//! Integration tests for the span tracer: solves traced end-to-end must
//! produce valid, well-nested per-rank timelines — and identical numbers.
//!
//! The tracing invariants under test:
//!
//! * spans nest (every span lies inside its parent, depths consistent);
//! * each rank writes its own track, timestamps monotone within a track;
//! * the Chrome export is valid JSON with matched B/E pairs per track;
//! * a traced solve is **bitwise identical** to an untraced one — same
//!   iterates and the same full `Counters`;
//! * under the overlapped ranked schedule, `ExchangeWait` spans sit
//!   strictly inside the window opened by `ExchangePost`, with interior
//!   SpMV spans in between (the compute/communication overlap the split
//!   was built for).
//!
//! Tracers are constructed explicitly — never via `SPCG_TRACE` — so the
//! tests stay independent of the environment and of each other.

use spcg::obs::{Phase, SpanRecord, Tracer};
use spcg::precond::Jacobi;
use spcg::solvers::{
    chebyshev_basis, solve, Engine, Method, Problem, SolveOptions, StoppingCriterion,
};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::{poisson_2d, poisson_3d};

fn opts() -> SolveOptions {
    SolveOptions::default()
        .with_criterion(StoppingCriterion::PrecondMNorm)
        .with_tol(1e-8)
        .with_trace(None)
}

fn spcg_method(problem: &Problem<'_>, s: usize) -> Method {
    Method::SPcg {
        s,
        basis: chebyshev_basis(problem, 20, 0.05),
    }
}

#[test]
fn traced_ranked_spcg_is_bitwise_identical_to_untraced() {
    let a = poisson_3d(8);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let method = spcg_method(&problem, 4);
    let engine = Engine::Ranked { ranks: 2 };

    let plain = solve(&method, &problem, &opts(), engine);
    let tracer = Tracer::new();
    let traced = solve(
        &method,
        &problem,
        &opts().with_trace(Some(tracer.clone())),
        engine,
    );

    assert!(plain.converged(), "{:?}", plain.outcome);
    assert_eq!(plain.iterations, traced.iterations);
    assert_eq!(plain.outcome, traced.outcome);
    assert_eq!(plain.x, traced.x, "iterates must be bitwise identical");
    assert_eq!(plain.counters, traced.counters, "full Counters must match");
    assert_eq!(plain.collectives_per_rank, traced.collectives_per_rank);
    // And the trace is not empty — tracing actually happened.
    let tracks = tracer.tracks();
    assert!(!tracks.is_empty());
}

#[test]
fn serial_traced_solve_is_bitwise_identical_too() {
    let a = poisson_2d(16);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    for method in [Method::Pcg, Method::Pcg3, spcg_method(&problem, 4)] {
        let plain = solve(&method, &problem, &opts(), Engine::Serial);
        let tracer = Tracer::new();
        let traced = solve(
            &method,
            &problem,
            &opts().with_trace(Some(tracer.clone())),
            Engine::Serial,
        );
        assert_eq!(plain.x, traced.x, "{}", method.name());
        assert_eq!(plain.counters, traced.counters, "{}", method.name());
        assert!(tracer.tracks().iter().any(|t| !t.spans.is_empty()));
    }
}

#[test]
fn per_rank_tracks_are_disjoint_and_monotone() {
    let a = poisson_3d(8);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let tracer = Tracer::new();
    let res = solve(
        &spcg_method(&problem, 4),
        &problem,
        &opts().with_trace(Some(tracer.clone())),
        Engine::Ranked { ranks: 4 },
    );
    assert!(res.converged());

    let tracks = tracer.tracks();
    // One solver track per rank, each under its own rank id.
    let mut ranks: Vec<usize> = tracks.iter().map(|t| t.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    assert_eq!(ranks, vec![0, 1, 2, 3]);
    for track in &tracks {
        assert_eq!(track.dropped, 0, "no events may be dropped at this size");
        assert!(!track.spans.is_empty());
        for s in &track.spans {
            assert!(s.end_s >= s.begin_s, "span with negative duration");
        }
        // Spans of equal depth never overlap; children nest inside parents.
        let mut stack: Vec<SpanRecord> = Vec::new();
        let mut by_begin = track.spans.clone();
        by_begin.sort_by(|p, q| p.begin_s.total_cmp(&q.begin_s));
        let mut last_begin = f64::NEG_INFINITY;
        for s in &by_begin {
            assert!(s.begin_s >= last_begin, "begin times must be monotone");
            last_begin = s.begin_s;
            while let Some(top) = stack.last() {
                if s.begin_s >= top.end_s {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(parent) = stack.last() {
                assert!(
                    s.end_s <= parent.end_s,
                    "span must close before its parent: {:?} inside {:?}",
                    s.phase,
                    parent.phase
                );
                assert_eq!(s.depth, parent.depth + 1, "depth must count nesting");
            } else {
                assert_eq!(s.depth, 0, "top-level span at nonzero depth");
            }
            stack.push(*s);
        }
    }
}

#[test]
fn chrome_export_is_valid_and_balanced() {
    let a = poisson_2d(14);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let tracer = Tracer::new();
    let res = solve(
        &spcg_method(&problem, 4),
        &problem,
        &opts().with_trace(Some(tracer.clone())),
        Engine::Ranked { ranks: 2 },
    );
    assert!(res.converged());

    // Bare Chrome export: every B has a matching E, timestamps ordered.
    let chrome = tracer.chrome_trace_json();
    let stats = spcg::obs::validate_chrome_trace(&chrome).expect("chrome export invalid");
    assert!(stats.spans > 0);
    assert_eq!(stats.events, 2 * stats.spans);
    assert_eq!(stats.tracks, 2);

    // Full export with the counters summary spliced in stays loadable.
    let full = tracer.export_json(Some(&res.counters.to_json()));
    let stats2 = spcg::obs::validate_chrome_trace(&full).expect("full export invalid");
    assert_eq!(stats.spans, stats2.spans);
    let parsed = spcg::obs::json::parse(&full).expect("export must parse");
    let summary = parsed.get("summary").expect("summary object");
    let counters = summary.get("counters").expect("counters spliced");
    assert_eq!(
        counters.get("iterations").and_then(|v| v.as_f64()),
        Some(res.counters.iterations as f64)
    );
}

#[test]
fn overlapped_exchange_wait_sits_inside_post_window() {
    let a = poisson_3d(10);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let tracer = Tracer::new();
    let res = solve(
        &spcg_method(&problem, 4),
        &problem,
        &opts().with_overlap(true).with_trace(Some(tracer.clone())),
        Engine::Ranked { ranks: 2 },
    );
    assert!(res.converged());

    for track in tracer.tracks() {
        let mut spans = track.spans.clone();
        spans.sort_by(|p, q| p.begin_s.total_cmp(&q.begin_s));
        let mut last_post: Option<SpanRecord> = None;
        let mut interior_since_post: Vec<SpanRecord> = Vec::new();
        let mut overlapped_waits = 0usize;
        let mut waits = 0usize;
        for s in &spans {
            match s.phase {
                Phase::ExchangePost => {
                    last_post = Some(*s);
                    interior_since_post.clear();
                }
                Phase::Spmv => interior_since_post.push(*s),
                Phase::ExchangeWait => {
                    waits += 1;
                    let post = last_post
                        .as_ref()
                        .expect("every ExchangeWait needs a prior ExchangePost");
                    assert!(
                        post.end_s <= s.begin_s,
                        "wait must begin after its post returned (rank {})",
                        track.rank
                    );
                    // Interior SpMVs issued between post and wait are the
                    // compute overlapped with the in-flight exchange.
                    if interior_since_post
                        .iter()
                        .any(|i| i.begin_s >= post.end_s && i.end_s <= s.begin_s)
                    {
                        overlapped_waits += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(waits > 0, "rank {} recorded no exchange waits", track.rank);
        assert!(
            overlapped_waits > 0,
            "rank {} never overlapped interior SpMV with an open exchange",
            track.rank
        );
    }
}

#[test]
fn overlap_on_and_off_trace_the_same_numbers() {
    // The overlapped and blocking schedules must agree bitwise even while
    // both are being traced (spans differ, numbers do not).
    let a = poisson_3d(8);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let method = spcg_method(&problem, 4);
    let t1 = Tracer::new();
    let t2 = Tracer::new();
    let on = solve(
        &method,
        &problem,
        &opts().with_overlap(true).with_trace(Some(t1.clone())),
        Engine::Ranked { ranks: 2 },
    );
    let off = solve(
        &method,
        &problem,
        &opts().with_overlap(false).with_trace(Some(t2.clone())),
        Engine::Ranked { ranks: 2 },
    );
    assert_eq!(on.x, off.x);
    assert_eq!(on.counters, off.counters);
    // The blocking schedule records no interior/frontier split around the
    // wait: frontier spans only exist under overlap.
    let frontier_on: usize = t1
        .tracks()
        .iter()
        .map(|t| t.phase_spans(Phase::Frontier).len())
        .sum();
    assert!(frontier_on > 0, "overlapped run must record Frontier spans");
}
