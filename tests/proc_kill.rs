//! Real rank-failure recovery under the proc backend.
//!
//! `SPCG_PROC_KILL=<rank>:<nth>` makes the targeted worker process of the
//! first world incarnation exit — no farewell frame, just a dead socket —
//! right before its nth allreduce. The parent must detect the death,
//! respawn the world, and converge anyway, charging the incarnation as a
//! restart.
//!
//! This lives in its own integration-test binary because the kill
//! directive is process-wide environment state: it must not leak into the
//! parity suite, and Rust runs each test file in its own process.

#![cfg(unix)]

use spcg::prelude::*;
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_2d;

#[test]
fn killed_rank_process_is_healed_by_world_respawn() {
    assert!(
        spcg::solvers::procexec::rankd_path().is_some(),
        "spcg-rankd not found: run a workspace build first (or set SPCG_RANKD)"
    );
    // Safety: set before any solve runs in this (single-test) process.
    std::env::set_var("SPCG_PROC_KILL", "1:3");
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = spcg::precond::Jacobi::new(&a);
    let problem = Problem::try_new(&a, &m, &b).unwrap();
    let opts = SolveOptions::builder()
        .tol(1e-8)
        .build()
        .with_backend(Backend::Proc)
        .with_threads(1)
        .with_faults(None);
    let res = solve(&Method::Pcg, &problem, &opts, Engine::Ranked { ranks: 2 });
    assert!(
        res.converged(),
        "solve did not converge after rank death: {:?}",
        res.outcome
    );
    assert!(
        res.restarts >= 1,
        "rank was killed but no restart was charged"
    );
    assert!(res.counters.restarts >= 1);

    // With the directive gone the same configuration runs clean — the
    // respawn path leaves no persistent state behind.
    std::env::remove_var("SPCG_PROC_KILL");
    let clean = solve(&Method::Pcg, &problem, &opts, Engine::Ranked { ranks: 2 });
    assert!(clean.converged());
    assert_eq!(clean.restarts, 0, "clean solve charged a restart");
    // And the healed solution matches the clean one bitwise: the respawned
    // world restarted from the same initial state.
    assert_eq!(res.x, clean.x, "healed solution differs from clean solve");
}
