//! Sparse-format parity: a solve with the SELL-C-σ format must be
//! **bitwise identical** to the same solve with CSR — same iterates, same
//! iteration counts, same operation counters — for every method, engine,
//! rank count, thread count, and overlap setting. The sliced format is a
//! pure layout/performance change; any numerical drift is a kernel bug
//! (re-ordered accumulation, an FMA sneaking into the SIMD path, a
//! permutation applied to the wrong side).
//!
//! Formats are selected explicitly via [`SolveOptions`]'s builder, never
//! via `SPCG_FORMAT`, so the suite behaves identically under the CI SELL
//! job's environment.

use spcg::prelude::*;
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::{poisson_1d, poisson_2d};
use spcg::sparse::{CsrMatrix, SellMatrix, SparseFormat};

fn all_methods(problem: &Problem<'_>) -> Vec<(&'static str, Method)> {
    let basis = spcg::solvers::chebyshev_basis(problem, 20, 0.05);
    vec![
        ("pcg", Method::Pcg),
        ("pcg3", Method::Pcg3),
        (
            "spcg",
            Method::SPcg {
                s: 4,
                basis: basis.clone(),
            },
        ),
        ("spcg_mon", Method::SPcgMon { s: 4 }),
        (
            "capcg",
            Method::CaPcg {
                s: 4,
                basis: basis.clone(),
            },
        ),
        (
            "capcg3",
            Method::CaPcg3 {
                s: 4,
                basis: basis.clone(),
            },
        ),
        ("capcg_gs", Method::CaPcgGs { s: 4, basis }),
        ("ekcg", Method::EkCg { t: 4 }),
    ]
}

fn opts(format: SparseFormat, threads: usize, overlap: bool) -> SolveOptions {
    SolveOptions::builder()
        .tol(1e-8)
        .keep_history(true)
        .overlap(overlap)
        .format(format)
        .build()
        .with_threads(threads)
        .with_faults(None)
}

fn assert_parity(tag: &str, c: &SolveResult, s: &SolveResult) {
    assert_eq!(c.outcome, s.outcome, "{tag}: outcome");
    assert_eq!(c.iterations, s.iterations, "{tag}: iterations");
    assert_eq!(c.x, s.x, "{tag}: solution not bitwise identical");
    assert_eq!(c.history, s.history, "{tag}: residual history");
    assert_eq!(c.counters, s.counters, "{tag}: counters");
    assert!(c.converged(), "{tag}: did not converge");
}

#[test]
fn sell_is_bitwise_identical_to_csr_on_the_serial_engine() {
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = spcg::precond::Jacobi::new(&a);
    let problem = Problem::try_new(&a, &m, &b).unwrap();
    for (name, method) in all_methods(&problem) {
        for threads in [1, 2] {
            let c = solve(
                &method,
                &problem,
                &opts(SparseFormat::Csr, threads, false),
                Engine::Serial,
            );
            let s = solve(
                &method,
                &problem,
                &opts(SparseFormat::Sell, threads, false),
                Engine::Serial,
            );
            assert_parity(&format!("serial {name} threads={threads}"), &c, &s);
        }
    }
}

#[test]
fn sell_is_bitwise_identical_to_csr_on_the_ranked_engine() {
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = spcg::precond::Jacobi::new(&a);
    let problem = Problem::try_new(&a, &m, &b).unwrap();
    for (name, method) in all_methods(&problem) {
        for ranks in [1, 2, 4] {
            for threads in [1, 2] {
                for overlap in [false, true] {
                    let engine = Engine::Ranked { ranks };
                    let c = solve(
                        &method,
                        &problem,
                        &opts(SparseFormat::Csr, threads, overlap),
                        engine,
                    );
                    let s = solve(
                        &method,
                        &problem,
                        &opts(SparseFormat::Sell, threads, overlap),
                        engine,
                    );
                    let tag =
                        format!("ranked {name} ranks={ranks} threads={threads} overlap={overlap}");
                    assert_parity(&tag, &c, &s);
                }
            }
        }
    }
}

/// Dense reference product for a CSR matrix, one row at a time in CSR
/// order — the accumulation order both formats promise to reproduce.
fn reference_spmv(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    a.spmv(x, &mut y);
    y
}

fn wiggly_x(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + 0.25 * ((i * 2654435761) % 97) as f64 / 97.0)
        .collect()
}

#[test]
fn sell_spmv_matches_csr_on_generators() {
    // 2D Poisson exercises σ-window sorting across equal-length rows;
    // the 1D tridiagonal case exercises short rows and narrow slices.
    for a in [poisson_2d(23), poisson_1d(513)] {
        let sell = SellMatrix::from_csr(&a);
        let x = wiggly_x(a.ncols());
        let mut y = vec![0.0; a.nrows()];
        sell.spmv(&x, &mut y);
        assert_eq!(
            y,
            reference_spmv(&a, &x),
            "sell spmv must match csr bitwise"
        );
        assert_eq!(sell.nnz(), a.nnz());
        let pad = sell.pad_ratio();
        assert!(
            (0.0..1.0).contains(&pad),
            "pad fraction out of range: {pad}"
        );
    }
}

#[test]
fn sell_handles_ragged_and_empty_rows() {
    // Hand-built CSR with wildly ragged rows, an empty row, and a final
    // short row — the worst case for slice padding: row lengths
    // 5, 0, 1, 3, 1 over 5 columns.
    let row_ptr = vec![0, 5, 5, 6, 9, 10];
    let col_idx = vec![0, 1, 2, 3, 4, 2, 0, 2, 4, 1];
    let values = vec![4.0, -1.0, -0.5, -0.25, -0.125, 3.0, -1.0, 5.0, -1.0, 2.0];
    let a = CsrMatrix::from_raw(5, 5, row_ptr, col_idx, values);
    let sell = SellMatrix::from_csr(&a);
    assert_eq!(sell.nnz(), 10);
    assert!(sell.padded_nnz() >= sell.nnz());
    let x = wiggly_x(5);
    let mut y = vec![0.0; 5];
    sell.spmv(&x, &mut y);
    assert_eq!(y, reference_spmv(&a, &x));
    // The empty row contributes exactly zero, untouched by pad entries.
    assert_eq!(y[1], 0.0);
}

#[test]
fn sigma_permutation_is_a_bijection_and_round_trips() {
    let a = poisson_2d(19);
    let sell = SellMatrix::from_csr(&a);
    let perm = sell.perm();
    assert_eq!(perm.len(), a.nrows());
    let mut seen = vec![false; a.nrows()];
    for &p in perm {
        assert!(p < a.nrows(), "perm entry out of range");
        assert!(!seen[p], "perm entry {p} repeated");
        seen[p] = true;
    }
    // Window confinement: σ-sorting may only move a row within its
    // window, so lane p's source row stays within σ of p.
    let sigma = 256usize;
    for (lane, &row) in perm.iter().enumerate() {
        let window = lane / sigma;
        assert_eq!(row / sigma, window, "row {row} escaped window {window}");
    }
}
