//! Parity suite for communication–computation overlap: for every method
//! and every rank/thread combination, the overlapped schedule must produce
//! the **bitwise-identical** solution, the same iteration count, and the
//! same counter set (message count, halo volume, reductions, FLOP classes)
//! as the blocking schedule — overlap may only move *when* the one
//! exchange per round is waited on, never what is exchanged or computed.
//!
//! The rank sweep covers {1, 2, 4} plus the value of `SPCG_RANKS` when the
//! environment sets one (the CI overlap job runs the suite at
//! `SPCG_RANKS=2 SPCG_THREADS=2`).

use spcg::precond::Jacobi;
use spcg::solvers::{
    chebyshev_basis, solve, Engine, Method, Problem, SolveOptions, StoppingCriterion,
};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_2d;

const S: usize = 4;

fn all_methods(problem: &Problem<'_>) -> Vec<Method> {
    let basis = chebyshev_basis(problem, 20, 0.05);
    vec![
        Method::Pcg,
        Method::Pcg3,
        Method::SPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::SPcgMon { s: S },
        Method::CaPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::CaPcg3 { s: S, basis },
    ]
}

fn rank_counts() -> Vec<usize> {
    let mut ranks = vec![1usize, 2, 4];
    if let Some(r) = std::env::var("SPCG_RANKS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&r| r > 0)
    {
        if !ranks.contains(&r) {
            ranks.push(r);
        }
    }
    ranks
}

/// The tentpole acceptance gate: all six methods × overlap {on, off} ×
/// ranks {1, 2, 4} × threads {1, 2} — bitwise-identical `x`, identical
/// iteration counts, and equal counters (halo messages, halo words,
/// collectives, allreduce words, and every FLOP class compare via the
/// `Counters` equality).
#[test]
fn overlap_on_off_is_bitwise_and_counter_identical_for_all_methods() {
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    for method in all_methods(&problem) {
        for ranks in rank_counts() {
            for threads in [1usize, 2] {
                let base = SolveOptions::builder().tol(1e-8).threads(threads);
                let on = solve(
                    &method,
                    &problem,
                    &base.clone().overlap(true).build(),
                    Engine::Ranked { ranks },
                );
                let off = solve(
                    &method,
                    &problem,
                    &base.overlap(false).build(),
                    Engine::Ranked { ranks },
                );
                let tag = format!("{} ranks={ranks} threads={threads}", method.name());
                assert!(on.converged(), "{tag} overlap=on: {:?}", on.outcome);
                assert_eq!(on.x, off.x, "{tag}: x must be bitwise identical");
                assert_eq!(on.iterations, off.iterations, "{tag}: iterations");
                assert_eq!(on.outcome, off.outcome, "{tag}: outcome");
                // Spell out the communication fields for readable failures,
                // then require full counter equality.
                assert_eq!(
                    on.counters.halo_exchanges, off.counters.halo_exchanges,
                    "{tag}: halo message count"
                );
                assert_eq!(
                    on.counters.halo_words, off.counters.halo_words,
                    "{tag}: halo volume"
                );
                assert_eq!(
                    on.counters.global_collectives, off.counters.global_collectives,
                    "{tag}: reduction count"
                );
                assert_eq!(
                    on.counters.allreduce_words, off.counters.allreduce_words,
                    "{tag}: reduction payload"
                );
                assert_eq!(on.counters, off.counters, "{tag}: full counter set");
                assert_eq!(
                    on.collectives_per_rank, off.collectives_per_rank,
                    "{tag}: per-rank collectives"
                );
            }
        }
    }
}

/// Overlap must leave the ranked-vs-serial relationship untouched: one
/// rank with overlap on is still bitwise equal to the serial engine.
#[test]
fn single_rank_overlap_matches_serial_bitwise() {
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::builder().tol(1e-8).overlap(true).build();
    for method in all_methods(&problem) {
        let serial = solve(&method, &problem, &opts, Engine::Serial);
        let ranked = solve(&method, &problem, &opts, Engine::Ranked { ranks: 1 });
        assert_eq!(serial.x, ranked.x, "{}", method.name());
        assert_eq!(serial.iterations, ranked.iterations, "{}", method.name());
    }
}

/// The replicated fallback paths (non-pointwise preconditioners) have no
/// overlap window; both modes must still agree bitwise and in counters.
#[test]
fn overlap_parity_holds_for_non_pointwise_preconditioners() {
    use spcg::precond::{BlockJacobi, ChebyshevPrecond, Preconditioner};
    use std::sync::Arc;
    let a = Arc::new(poisson_2d(10));
    let b = paper_rhs(&a);
    let preconds: Vec<(&str, Box<dyn Preconditioner>)> = vec![
        ("block_jacobi", Box::new(BlockJacobi::new(&a, 10))),
        (
            "chebyshev",
            Box::new(ChebyshevPrecond::from_matrix(Arc::clone(&a), 3, 30.0)),
        ),
    ];
    for (name, m) in &preconds {
        let problem = Problem::new(&a, m.as_ref(), &b);
        let basis = chebyshev_basis(&problem, 20, 0.05);
        let method = Method::SPcg { s: S, basis };
        for ranks in [2usize, 4] {
            let base = SolveOptions::builder().tol(1e-8);
            let on = solve(
                &method,
                &problem,
                &base.clone().overlap(true).build(),
                Engine::Ranked { ranks },
            );
            let off = solve(
                &method,
                &problem,
                &base.overlap(false).build(),
                Engine::Ranked { ranks },
            );
            assert_eq!(on.x, off.x, "{name} ranks={ranks}");
            assert_eq!(on.counters, off.counters, "{name} ranks={ranks}");
        }
    }
}

/// Overlap must not change the communication *structure* the paper models:
/// s-step methods still do one halo exchange per s-block.
#[test]
fn overlap_keeps_one_exchange_per_s_block() {
    if spcg::dist::faults_armed() {
        // Restart stages of the self-healing driver re-anchor the residual
        // with extra exchanges; the exact per-block count holds fault-free.
        // (The bitwise overlap-parity tests above stay armed: injection
        // decisions depend only on board rounds and reduce sequence
        // numbers, which the two schedules share.)
        return;
    }
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = chebyshev_basis(&problem, 20, 0.05);
    let method = Method::SPcg { s: S, basis };
    let opts = SolveOptions::builder()
        .tol(1e-8)
        .criterion(StoppingCriterion::PrecondMNorm)
        .overlap(true)
        .build();
    let r = solve(&method, &problem, &opts, Engine::Ranked { ranks: 4 });
    assert!(r.converged());
    // One depth-s exchange per entered block, including the final check round.
    let blocks = r.counters.outer_iterations + 1;
    assert_eq!(r.counters.halo_exchanges, blocks);
    assert!(r.counters.halo_words > 0);
}
