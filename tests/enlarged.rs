//! Integration tests for the enlarged-Krylov family: `Method::EkCg`
//! (MSDO-CG block directions) and `Method::CaPcgGs` (s-step body with
//! Gauss-Seidel Gram solves).
//!
//! Three claims are pinned down here. First, degenerate parameters
//! collapse to the classical methods *bitwise* (t = 1 enlarges nothing).
//! Second, the Gauss-Seidel Gram path survives the monomial high-s regime
//! that breaks the Cholesky-factored s-step solver — the robustness the
//! method exists for. Third, both methods ride the ranked engine and the
//! resilience driver like every other `Method`, so the engine plumbing
//! (halo exchange, fused allreduce, fault sites) is exercised end to end.

use spcg::basis::BasisType;
use spcg::dist::FaultPlan;
use spcg::precond::Jacobi;
use spcg::solvers::{
    capcg_gs, chebyshev_basis, ekcg, pcg, solve, spcg as run_spcg, Engine, Method, Problem,
    SolveOptions, SolveResult,
};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_2d;
use spcg::sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
use spcg::sparse::CsrMatrix;

/// A rhs exciting every coordinate block: enlarged-space methods split the
/// residual by contiguous index ranges, so a near-impulse rhs (like
/// `paper_rhs`) would make most split blocks zero and the test vacuous.
fn dense_rhs(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + 0.5 * ((i as f64) * 0.7).sin())
        .collect()
}

fn system() -> (CsrMatrix, Vec<f64>) {
    let a = poisson_2d(12);
    let b = dense_rhs(a.nrows());
    (a, b)
}

#[test]
fn ekcg_with_one_block_is_bitwise_pcg() {
    // t = 1 splits nothing: T(r) = r, the enlarged subspace is the Krylov
    // subspace, and the implementation delegates to the scalar PCG kernel.
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default().with_tol(1e-9);
    let p = pcg(&problem, &opts);
    let e = ekcg(&problem, 1, &opts);
    assert!(p.converged() && e.converged());
    assert_eq!(p.iterations, e.iterations, "t=1 must walk PCG's iterates");
    assert_eq!(p.x, e.x, "t=1 solution not bitwise PCG");
    assert_eq!(p.history, e.history, "t=1 residual history");
}

#[test]
fn ekcg_converges_for_uneven_and_even_splits() {
    // The t-split is by balanced contiguous ranges; t need not divide n
    // (n = 144 here, t = 5 gives ranges of 28/29 rows). Every t must reach
    // the same solution of the same system.
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default().with_tol(1e-9);
    let reference = pcg(&problem, &opts);
    assert!(reference.converged());
    for t in [2usize, 3, 5, 8] {
        let res = ekcg(&problem, t, &opts);
        assert!(res.converged(), "t={t}: {:?}", res.outcome);
        assert!(
            res.true_relative_residual(&a, &b) < 1e-7,
            "t={t}: residual too large"
        );
        for (i, (p, q)) in res.x.iter().zip(&reference.x).enumerate() {
            assert!(
                (p - q).abs() < 1e-6,
                "t={t}: x[{i}] = {p} disagrees with PCG's {q}"
            );
        }
    }
}

#[test]
fn ekcg_enlarging_cuts_iterations() {
    // The point of enlarging: t block directions per iteration buy a
    // shorter outer iteration. Monotonicity is not guaranteed step to
    // step, but t = 4 must beat t = 1 clearly.
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default().with_tol(1e-9);
    let t1 = ekcg(&problem, 1, &opts);
    let t4 = ekcg(&problem, 4, &opts);
    assert!(t1.converged() && t4.converged());
    assert!(
        t4.iterations < t1.iterations,
        "t=4 ({}) should beat t=1 ({})",
        t4.iterations,
        t1.iterations
    );
}

#[test]
fn capcg_gs_survives_monomial_high_s_where_cholesky_breaks_down() {
    // The headline robustness claim: on the ill-conditioned problem where
    // the Cholesky-factored monomial s = 10 solver loses convergence
    // (crates/solvers spcg tests pin the breakdown), the Gauss-Seidel Gram
    // path — never factoring the near-singular moment matrix, restarting
    // its recurrence on stagnation — still reaches the tolerance.
    // κ = 1e6 at tol = 1e-6: the monomial s = 10 Gram matrices are
    // numerically singular (the Cholesky path stalls at relres ~1e-2),
    // while the inexact GS path still grinds to the tolerance.
    let a = spd_with_spectrum(600, &SpectrumShape::Uniform { kappa: 1e6 }, 1.0, 3, 5);
    let m = Jacobi::new(&a);
    let b = paper_rhs(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default().with_max_iters(4000).with_tol(1e-6);
    let r_pcg = pcg(&problem, &opts);
    assert!(r_pcg.converged(), "baseline PCG: {:?}", r_pcg.outcome);
    let r_chol = run_spcg(&problem, 10, &BasisType::Monomial, &opts);
    assert!(
        !r_chol.converged() || r_chol.iterations > 2 * r_pcg.iterations,
        "cholesky path unexpectedly healthy: {:?} in {}",
        r_chol.outcome,
        r_chol.iterations
    );
    let r_gs = capcg_gs(&problem, 10, &BasisType::Monomial, &opts);
    assert!(
        r_gs.converged(),
        "GS path should survive s=10 monomial: {:?} in {}",
        r_gs.outcome,
        r_gs.iterations
    );
    assert!(
        r_gs.true_relative_residual(&a, &b) < 1e-5,
        "GS path converged to a false solution"
    );
}

fn assert_ranked_family_matches_serial(method: &Method, problem: &Problem<'_>) {
    let opts = SolveOptions::default().with_tol(1e-8);
    let serial = solve(method, problem, &opts, Engine::Serial);
    assert!(
        serial.converged(),
        "{} serial: {:?}",
        method.name(),
        serial.outcome
    );
    for ranks in [1usize, 2, 4] {
        let ranked = solve(method, problem, &opts, Engine::Ranked { ranks });
        assert!(
            ranked.converged(),
            "{} ranks={ranks}: {:?}",
            method.name(),
            ranked.outcome
        );
        if ranks == 1 {
            assert_eq!(
                ranked.x,
                serial.x,
                "{} ranks=1 not bitwise serial",
                method.name()
            );
        }
        // Partitioned reductions round differently; allow a block or two
        // of drift but no regime change.
        let slack = 2 * method.s().max(4);
        assert!(
            ranked.iterations.abs_diff(serial.iterations) <= slack,
            "{} ranks={ranks}: {} vs serial {}",
            method.name(),
            ranked.iterations,
            serial.iterations
        );
    }
}

#[test]
fn enlarged_family_rides_the_ranked_engine() {
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = chebyshev_basis(&problem, 20, 0.05);
    assert_ranked_family_matches_serial(&Method::EkCg { t: 4 }, &problem);
    assert_ranked_family_matches_serial(&Method::CaPcgGs { s: 4, basis }, &problem);
}

#[test]
fn enlarged_family_self_heals_under_injected_faults() {
    // Deterministic fault injection: same seed → bitwise-identical faulted
    // solve, with at least one fault actually absorbed (else the test is
    // vacuous) and a genuine solution at the end.
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = chebyshev_basis(&problem, 20, 0.05);
    let run = |method: &Method| -> SolveResult {
        let plan = FaultPlan::new(7, 0.05);
        let o = SolveOptions::builder().tol(1e-8).faults(Some(plan)).build();
        solve(method, &problem, &o, Engine::Ranked { ranks: 2 })
    };
    for method in [Method::EkCg { t: 4 }, Method::CaPcgGs { s: 4, basis }] {
        let first = run(&method);
        let second = run(&method);
        assert!(
            first.faults_absorbed > 0,
            "{}: plan injected nothing — weak test",
            method.name()
        );
        assert!(first.converged(), "{}: {:?}", method.name(), first.outcome);
        assert_eq!(
            first.x,
            second.x,
            "{}: faulted solve not reproducible",
            method.name()
        );
        assert_eq!(first.faults_absorbed, second.faults_absorbed);
        assert!(
            first.true_relative_residual(&a, &b) < 1e-6,
            "{}: faulted residual too large",
            method.name()
        );
    }
}
