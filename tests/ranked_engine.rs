//! Integration tests for the unified execution engine: every method run
//! through `Engine::Ranked` must reproduce the serial solver — same
//! iteration count, matching iterates — while exhibiting the distributed
//! communication structure the paper models (one global collective and one
//! ghost-zone exchange per s-block).

use spcg::precond::Jacobi;
use spcg::solvers::{
    chebyshev_basis, solve, Engine, Method, Problem, SolveOptions, StoppingCriterion,
};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::{poisson_2d, poisson_3d};
use spcg::sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
use spcg::sparse::CsrMatrix;

const S: usize = 4;

fn all_methods(problem: &Problem<'_>) -> Vec<Method> {
    let basis = chebyshev_basis(problem, 20, 0.05);
    vec![
        Method::Pcg,
        Method::Pcg3,
        Method::SPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::SPcgMon { s: S },
        Method::CaPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::CaPcg3 { s: S, basis },
    ]
}

/// True when `SPCG_FAULTS` arms deterministic fault injection (the CI
/// fault job): ranked solves then self-heal through restarts, so the
/// exact-equality and exact-count assertions stand down — convergence and
/// residual quality are what a faulted run owes.
fn faulted() -> bool {
    spcg::dist::faults_armed()
}

fn assert_ranked_matches_serial(a: &CsrMatrix, opts: &SolveOptions, x_tol: f64) {
    let b = paper_rhs(a);
    let m = Jacobi::new(a);
    let problem = Problem::new(a, &m, &b);
    for method in all_methods(&problem) {
        let serial = solve(&method, &problem, opts, Engine::Serial);
        assert!(
            serial.converged(),
            "{} serial: {:?}",
            method.name(),
            serial.outcome
        );
        assert_eq!(serial.collectives_per_rank, None);
        for ranks in [1usize, 2, 4] {
            let ranked = solve(&method, &problem, opts, Engine::Ranked { ranks });
            assert!(
                ranked.converged(),
                "{} ranks={ranks}: {:?}",
                method.name(),
                ranked.outcome
            );
            assert!(ranked.collectives_per_rank.is_some(), "{}", method.name());
            if faulted() {
                // Under injected faults the solve restarts its way to the
                // answer; iteration counts and counters legitimately differ,
                // but the solution must still be genuine.
                assert!(
                    ranked.true_relative_residual(a, &b) < 1e-6,
                    "{} ranks={ranks}: faulted residual too large",
                    method.name()
                );
                continue;
            }
            // Rank-partitioned reductions round differently from the serial
            // accumulation, which can flip the stopping test by an s-block
            // or two. sPCG_mon's Hankel moment matrices amplify the
            // perturbation hardest (the instability the paper's Table 2
            // documents), so it gets a wider allowance; anything beyond is
            // a real divergence.
            let blocks = if matches!(method, Method::SPcgMon { .. }) {
                4
            } else {
                2
            };
            let drift = ranked.iterations.abs_diff(serial.iterations);
            assert!(
                drift <= blocks * method.s(),
                "{} ranks={ranks}: iterations {} vs serial {}",
                method.name(),
                ranked.iterations,
                serial.iterations
            );
            if ranks == 1 {
                // One rank is the serial algorithm verbatim: bitwise equal.
                assert_eq!(drift, 0, "{}", method.name());
                assert_eq!(ranked.x, serial.x, "{} ranks=1 not bitwise", method.name());
            }
            if drift == 0 {
                for (i, (p, q)) in ranked.x.iter().zip(&serial.x).enumerate() {
                    assert!(
                        (p - q).abs() <= x_tol,
                        "{} ranks={ranks}: x[{i}] {p} vs {q}",
                        method.name()
                    );
                }
                // The engine records collectives with global sizes, so the
                // instrumented totals agree with the serial run exactly.
                assert_eq!(
                    ranked.counters.global_collectives,
                    serial.counters.global_collectives,
                    "{} ranks={ranks}",
                    method.name()
                );
                assert_eq!(
                    ranked.counters.allreduce_words,
                    serial.counters.allreduce_words,
                    "{} ranks={ranks}",
                    method.name()
                );
                assert_eq!(
                    ranked.counters.spmv_count,
                    serial.counters.spmv_count,
                    "{} ranks={ranks}",
                    method.name()
                );
            }
        }
    }
}

/// Truncated-run parity: with the solve cut off after two s-blocks the
/// accumulated reduction-rounding drift is below 1e-12, so the ranked
/// engine demonstrably walks the *same iterate sequence* as the serial
/// solver (not merely converging to the same limit).
fn assert_iterate_sequence_matches(a: &CsrMatrix) {
    if faulted() {
        // Truncated runs leave no room to restart within budget; the
        // sequence comparison is meaningful only fault-free.
        return;
    }
    let b = paper_rhs(a);
    let m = Jacobi::new(a);
    let problem = Problem::new(a, &m, &b);
    let opts = SolveOptions::builder().tol(1e-30).max_iters(2 * S).build();
    for method in all_methods(&problem) {
        let serial = solve(&method, &problem, &opts, Engine::Serial);
        for ranks in [1usize, 2, 4] {
            let ranked = solve(&method, &problem, &opts, Engine::Ranked { ranks });
            assert_eq!(
                ranked.iterations,
                serial.iterations,
                "{} ranks={ranks}",
                method.name()
            );
            for (i, (p, q)) in ranked.x.iter().zip(&serial.x).enumerate() {
                assert!(
                    (p - q).abs() <= 1e-12,
                    "{} ranks={ranks}: x[{i}] {p} vs {q}",
                    method.name()
                );
            }
        }
    }
}

#[test]
fn ranked_matches_serial_on_poisson_2d() {
    let a = poisson_2d(12);
    let opts = SolveOptions::builder().tol(1e-8).build();
    assert_ranked_matches_serial(&a, &opts, 1e-8);
    assert_iterate_sequence_matches(&a);
}

#[test]
fn all_methods_solve_poisson_3d_on_four_ranks() {
    // The acceptance scenario: every method solves a 3D Poisson system via
    // Engine::Ranked { ranks: 4 } with iterates matching serial execution.
    let a = poisson_3d(8);
    let opts = SolveOptions::builder().tol(1e-8).build();
    assert_ranked_matches_serial(&a, &opts, 1e-8);
    assert_iterate_sequence_matches(&a);
}

#[test]
fn ranked_matches_serial_on_random_spd_property() {
    // Hand-rolled property test (no proptest in the tree): random SPD
    // systems across seeds and spectrum shapes, R ∈ {1, 2, 4}.
    let opts = SolveOptions::builder().tol(1e-8).build();
    for (seed, kappa) in [(1u64, 50.0), (2, 200.0), (3, 80.0)] {
        let a = spd_with_spectrum(160, &SpectrumShape::Geometric { kappa }, 1.0, 3, seed);
        assert_ranked_matches_serial(&a, &opts, 1e-8);
        assert_iterate_sequence_matches(&a);
    }
}

#[test]
fn spcg_collectives_are_one_per_s_block() {
    if faulted() {
        // Restart stages add collectives; the exact count holds fault-free.
        return;
    }
    // sPCG's collective count under ranked execution is ⌈iters/s⌉ blocks
    // plus the final check round — one fused allreduce per s steps.
    let a = poisson_2d(14);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = chebyshev_basis(&problem, 20, 0.05);
    let opts = SolveOptions::builder()
        .tol(1e-8)
        .criterion(StoppingCriterion::PrecondMNorm)
        .build();
    for s in [2usize, 5, 10] {
        let method = Method::SPcg {
            s,
            basis: basis.clone(),
        };
        let res = solve(&method, &problem, &opts, Engine::Ranked { ranks: 4 });
        assert!(res.converged(), "s={s}: {:?}", res.outcome);
        let blocks = res.iterations.div_ceil(s) as u64;
        assert_eq!(res.collectives_per_rank, Some(blocks + 1), "s={s}");
    }
}

#[test]
fn s_step_methods_do_one_halo_exchange_per_block() {
    if faulted() {
        // Restart stages re-anchor the residual with extra exchanges; the
        // per-block accounting holds fault-free.
        return;
    }
    // The MPK runs on depth-s ghost zones: one ghost exchange per s-block,
    // not one per SpMV. PCG by contrast exchanges once per iteration.
    let a = poisson_3d(8);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = chebyshev_basis(&problem, 20, 0.05);
    let opts = SolveOptions::builder()
        .tol(1e-8)
        .criterion(StoppingCriterion::PrecondMNorm)
        .build();

    let pcg = solve(&Method::Pcg, &problem, &opts, Engine::Ranked { ranks: 4 });
    assert!(pcg.converged());
    // One exchange per SpMV, one SpMV per iteration.
    assert_eq!(pcg.counters.halo_exchanges, pcg.counters.spmv_count);

    for (method, exchanges_per_block) in [
        (
            Method::SPcg {
                s: S,
                basis: basis.clone(),
            },
            1,
        ),
        (Method::SPcgMon { s: S }, 1),
        // CA-PCG builds two Krylov bases per outer iteration.
        (
            Method::CaPcg {
                s: S,
                basis: basis.clone(),
            },
            2,
        ),
        (
            Method::CaPcg3 {
                s: S,
                basis: basis.clone(),
            },
            1,
        ),
    ] {
        let res = solve(&method, &problem, &opts, Engine::Ranked { ranks: 4 });
        assert!(res.converged(), "{}: {:?}", method.name(), res.outcome);
        // Each entered block (including the final check round) exchanges
        // ghosts a fixed number of times, independent of s.
        let blocks = res.counters.outer_iterations + 1;
        assert_eq!(
            res.counters.halo_exchanges,
            exchanges_per_block * blocks,
            "{}: expected one ghost exchange per s-block",
            method.name()
        );
        assert!(
            res.counters.halo_words > 0,
            "{}: ghost exchange should move data on 4 ranks",
            method.name()
        );
    }
}

#[test]
fn ranked_works_with_non_pointwise_preconditioners() {
    // Block-Jacobi falls back to rank-local application when blocks align
    // (or replication when they don't); Chebyshev runs its SpMV polynomial
    // through the distributed operator. Both must match serial.
    use spcg::precond::{BlockJacobi, ChebyshevPrecond, Preconditioner};
    use std::sync::Arc;
    let a = Arc::new(poisson_2d(12));
    let b = paper_rhs(&a);
    let opts = SolveOptions::builder().tol(1e-8).build();
    let preconds: Vec<Box<dyn Preconditioner>> = vec![
        Box::new(BlockJacobi::new(&a, 12)),
        Box::new(ChebyshevPrecond::from_matrix(Arc::clone(&a), 3, 30.0)),
    ];
    for m in &preconds {
        let problem = Problem::new(&a, m.as_ref(), &b);
        let basis = chebyshev_basis(&problem, 20, 0.05);
        let method = Method::SPcg { s: S, basis };
        let serial = solve(&method, &problem, &opts, Engine::Serial);
        assert!(serial.converged(), "{:?}", serial.outcome);
        for ranks in [1usize, 3] {
            let ranked = solve(&method, &problem, &opts, Engine::Ranked { ranks });
            assert!(ranked.converged(), "ranks={ranks}: {:?}", ranked.outcome);
            if faulted() {
                continue;
            }
            assert_eq!(ranked.iterations, serial.iterations, "ranks={ranks}");
            for (p, q) in ranked.x.iter().zip(&serial.x) {
                assert!((p - q).abs() <= 1e-11, "ranks={ranks}: {p} vs {q}");
            }
        }
    }
}

#[test]
fn problem_try_new_round_trips_through_solve() {
    let a = poisson_2d(8);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::try_new(&a, &m, &b).expect("valid system");
    let opts = SolveOptions::builder().tol(1e-8).build();
    let res = solve(&Method::Pcg, &problem, &opts, Engine::Ranked { ranks: 2 });
    assert!(res.converged());

    let short = vec![1.0; 7];
    assert!(Problem::try_new(&a, &m, &short).is_err());
    assert!(matches!(
        Problem::try_new(&a, &m, &short),
        Err(spcg::solvers::ProblemError::RhsLen { .. })
    ));
}
