//! Integration tests for deterministic fault injection and the
//! self-healing solve driver.
//!
//! Every plan here is constructed explicitly (never from `SPCG_FAULTS`),
//! so the suite behaves identically whether or not the environment arms
//! injection — clean baselines pass `.faults(None)` to override any
//! ambient plan the CI fault job sets.

use spcg::dist::{FaultPlan, FaultSite};
use spcg::precond::Jacobi;
use spcg::solvers::{
    chebyshev_basis, solve, Engine, Method, Problem, Resilience, SolveOptions, SolveResult,
};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::poisson::poisson_2d;
use spcg::sparse::CsrMatrix;

const S: usize = 4;

fn all_methods(problem: &Problem<'_>) -> Vec<Method> {
    let basis = chebyshev_basis(problem, 20, 0.05);
    vec![
        Method::Pcg,
        Method::Pcg3,
        Method::SPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::SPcgMon { s: S },
        Method::CaPcg {
            s: S,
            basis: basis.clone(),
        },
        Method::CaPcg3 {
            s: S,
            basis: basis.clone(),
        },
        Method::CaPcgGs { s: S, basis },
        Method::EkCg { t: 4 },
    ]
}

fn system() -> (CsrMatrix, Vec<f64>) {
    let a = poisson_2d(12);
    let b = paper_rhs(&a);
    (a, b)
}

fn assert_bitwise_equal(p: &SolveResult, q: &SolveResult, what: &str) {
    assert_eq!(p.outcome, q.outcome, "{what}: outcome");
    assert_eq!(p.iterations, q.iterations, "{what}: iterations");
    assert_eq!(p.x, q.x, "{what}: iterate not bitwise equal");
    assert_eq!(p.counters, q.counters, "{what}: counters");
    assert_eq!(p.restarts, q.restarts, "{what}: restarts");
    // s_schedule is deliberately not compared: a driven solve records its
    // stage schedule while an undriven one leaves it empty.
}

/// The hard invariant of the resilience layer: with no faults, arming the
/// driver changes nothing — all six methods, ranks {1, 2, 4}, threads
/// {1, 2}, bitwise-identical solution, outcome, and counters.
#[test]
fn armed_resilience_without_faults_is_bitwise_passthrough() {
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    for method in all_methods(&problem) {
        for ranks in [1usize, 2, 4] {
            for threads in [1usize, 2] {
                let base = SolveOptions::builder()
                    .tol(1e-8)
                    .threads(threads)
                    .faults(None);
                let plain = solve(
                    &method,
                    &problem,
                    &base.clone().build(),
                    Engine::Ranked { ranks },
                );
                let armed = solve(
                    &method,
                    &problem,
                    &base.resilience(Resilience::default()).build(),
                    Engine::Ranked { ranks },
                );
                assert!(plain.converged(), "{}: {:?}", method.name(), plain.outcome);
                assert_bitwise_equal(
                    &plain,
                    &armed,
                    &format!("{} ranks={ranks} threads={threads}", method.name()),
                );
                assert_eq!(armed.faults_absorbed, 0);
                assert_eq!(armed.s_schedule, vec![method.s()]);
            }
        }
    }
}

/// Serial solves honour the policy too, and the passthrough holds there.
#[test]
fn serial_resilience_is_bitwise_passthrough() {
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    for method in all_methods(&problem) {
        let base = SolveOptions::builder().tol(1e-8).faults(None);
        let plain = solve(&method, &problem, &base.clone().build(), Engine::Serial);
        let armed = solve(
            &method,
            &problem,
            &base.resilience(Resilience::default()).build(),
            Engine::Serial,
        );
        assert_bitwise_equal(&plain, &armed, &method.name());
    }
}

/// A plan with rate zero is indistinguishable from no plan at all.
#[test]
fn zero_rate_plan_equals_no_plan() {
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let method = Method::Pcg;
    let clean = solve(
        &method,
        &problem,
        &SolveOptions::builder().tol(1e-8).faults(None).build(),
        Engine::Ranked { ranks: 2 },
    );
    let plan = FaultPlan::new(42, 0.0);
    assert!(!plan.active());
    let zeroed = solve(
        &method,
        &problem,
        &SolveOptions::builder()
            .tol(1e-8)
            .faults(Some(plan.clone()))
            .build(),
        Engine::Ranked { ranks: 2 },
    );
    assert_bitwise_equal(&clean, &zeroed, "rate-0 plan");
    assert_eq!(plan.counts().total(), 0);
    assert_eq!(zeroed.faults_absorbed, 0);
}

/// Same seed, same run: a faulted solve is exactly reproducible — bitwise
/// result and identical per-site injection counts.
#[test]
fn seeded_faulted_solve_is_deterministic() {
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let method = Method::Pcg;
    let run = |seed: u64| {
        let plan = FaultPlan::new(seed, 0.08);
        let res = solve(
            &method,
            &problem,
            &SolveOptions::builder()
                .tol(1e-8)
                .faults(Some(plan.clone()))
                .build(),
            Engine::Ranked { ranks: 2 },
        );
        (res, plan.counts())
    };
    let (r1, c1) = run(101);
    let (r2, c2) = run(101);
    assert_bitwise_equal(&r1, &r2, "seed 101 twice");
    assert_eq!(r1.s_schedule, r2.s_schedule);
    assert_eq!(r1.faults_absorbed, r2.faults_absorbed);
    for site in [
        FaultSite::PostStall,
        FaultSite::PublishDuplicate,
        FaultSite::CompleteStall,
        FaultSite::PoisonHalo,
        FaultSite::PoisonReduce,
    ] {
        assert_eq!(c1.site(site), c2.site(site), "{}", site.as_str());
    }
    // A different seed draws a different injection stream (the plan is
    // seed-dependent, not merely rate-dependent).
    let (_, c3) = run(202);
    assert_ne!(c1, c3, "seeds 101 and 202 coincide");
}

/// Stall-class faults (delays, duplicated publishes) perturb timing only:
/// the solve must be bitwise identical to the clean run while the timeout
/// and retry machinery visibly engages (the injected stalls sleep several
/// armed wait slices, and the plan records the fires).
#[test]
fn stall_faults_preserve_results_bitwise() {
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let method = Method::Pcg;
    let clean = solve(
        &method,
        &problem,
        &SolveOptions::builder().tol(1e-8).faults(None).build(),
        Engine::Ranked { ranks: 2 },
    );
    let plan = FaultPlan::new(9, 0.3).with_sites(&[
        FaultSite::PostStall,
        FaultSite::CompleteStall,
        FaultSite::PublishDuplicate,
    ]);
    let stalled = solve(
        &method,
        &problem,
        &SolveOptions::builder()
            .tol(1e-8)
            .faults(Some(plan.clone()))
            .build(),
        Engine::Ranked { ranks: 2 },
    );
    assert!(
        plan.counts().total() > 0,
        "stall plan never fired — no timeout path was exercised"
    );
    assert_eq!(stalled.faults_absorbed, plan.counts().total());
    assert_eq!(stalled.restarts, 0, "stalls must not trigger restarts");
    assert_bitwise_equal(&clean, &stalled, "stall-only plan");
}

/// Payload poisoning (NaN into a halo chunk or a reduction contribution)
/// must be absorbed: breakdown detection discards the poisoned stage and
/// the restarted solve still converges to a genuine solution.
#[test]
fn poisoned_payload_runs_self_heal_and_converge() {
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let method = Method::Pcg;
    for site in [FaultSite::PoisonReduce, FaultSite::PoisonHalo] {
        // Pick a seed whose stream provably poisons this run: the decision
        // function is pure, so the test can preview it. Salt 2 is the
        // reduction stream; salts 0/1 are the two exchange boards.
        let salts: &[u64] = match site {
            FaultSite::PoisonReduce => &[2],
            _ => &[0, 1],
        };
        let seed = (1u64..500)
            .find(|&seed| {
                let p = FaultPlan::new(seed, 0.05).with_sites(&[site]);
                salts.iter().any(|&salt| {
                    (0..2).any(|rank| (0..20).any(|seq| p.decides(site, salt, rank, seq)))
                })
            })
            .expect("no seed fires in 500 tries — rate or window broken");
        let plan = FaultPlan::new(seed, 0.05).with_sites(&[site]);
        let res = solve(
            &method,
            &problem,
            &SolveOptions::builder()
                .tol(1e-8)
                .faults(Some(plan.clone()))
                .build(),
            Engine::Ranked { ranks: 2 },
        );
        let tag = site.as_str();
        assert!(plan.counts().total() >= 1, "{tag}: plan never fired");
        assert!(res.faults_absorbed >= 1, "{tag}: no fault absorbed");
        assert!(
            res.converged(),
            "{tag} seed {seed}: did not self-heal: {:?}",
            res.outcome
        );
        assert!(
            res.restarts >= 1,
            "{tag} seed {seed}: converged without restarting — poison had no effect"
        );
        assert!(res.s_schedule.len() == res.restarts + 1, "{tag}: schedule");
        assert!(
            res.true_relative_residual(&a, &b) < 1e-6,
            "{tag} seed {seed}: healed solution is not genuine: {:.2e}",
            res.true_relative_residual(&a, &b)
        );
    }
}

/// s-step methods shrink s on breakdown-class restarts: drive a monomial
/// sPCG through a poisoned reduction and watch the schedule.
#[test]
fn faulted_s_step_methods_converge() {
    let (a, b) = system();
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    for method in all_methods(&problem) {
        let plan = FaultPlan::new(303, 0.06);
        let res = solve(
            &method,
            &problem,
            &SolveOptions::builder()
                .tol(1e-8)
                .max_iters(5_000)
                .faults(Some(plan.clone()))
                .build(),
            Engine::Ranked { ranks: 2 },
        );
        assert!(
            res.converged(),
            "{} under faults: {:?}",
            method.name(),
            res.outcome
        );
        assert!(
            res.true_relative_residual(&a, &b) < 1e-6,
            "{}: residual {:.2e}",
            method.name(),
            res.true_relative_residual(&a, &b)
        );
        assert_eq!(res.s_schedule.len(), res.restarts + 1, "{}", method.name());
        assert_eq!(res.s_schedule[0], method.s(), "{}", method.name());
    }
}
