//! Instrumentation and performance-model integration tests: measured
//! counters against the paper's Table-1 formulas, and model monotonicity.

use spcg::dist::MachineTopology;
use spcg::perf::table1::{verify_against_counters, Algorithm};
use spcg::perf::{predict_time, MachineParams};
use spcg::precond::Jacobi;
use spcg::solvers::{solve, Engine, Method, Problem, SolveOptions, StoppingCriterion};
use spcg::sparse::generators::{paper_rhs, poisson::poisson_2d};

fn run(method: &Method, problem: &Problem<'_>) -> spcg::solvers::SolveResult {
    let opts = SolveOptions::default()
        .with_criterion(StoppingCriterion::PrecondMNorm)
        .with_tol(1e-8);
    solve(method, problem, &opts, Engine::Serial)
}

#[test]
fn measured_counters_track_table1_formulas() {
    // Large enough that the formula-free first block (B^(1) = 0) and the
    // final check round amortize below the tolerance of the comparison.
    let a = poisson_2d(48);
    let n = a.nrows();
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    let s = 6u64;
    let cases = [
        (Algorithm::Pcg, Method::Pcg, false),
        (Algorithm::SPcgMon, Method::SPcgMon { s: s as usize }, false),
        (
            Algorithm::SPcg,
            Method::SPcg {
                s: s as usize,
                basis: basis.clone(),
            },
            true,
        ),
        (
            Algorithm::CaPcg,
            Method::CaPcg {
                s: s as usize,
                basis: basis.clone(),
            },
            true,
        ),
        (
            Algorithm::CaPcg3,
            Method::CaPcg3 {
                s: s as usize,
                basis,
            },
            true,
        ),
    ];
    for (alg, method, arb) in cases {
        let res = run(&method, &problem);
        assert!(res.counters.outer_iterations >= 2, "{}", method.name());
        let check = verify_against_counters(alg, s, n, arb, &res.counters);
        // Setup/teardown rounds and coefficient-dependent savings keep the
        // measurement within ~15% of the asymptotic formulas.
        assert!(
            check.max_relative_error() < 0.15,
            "{}: {:?}",
            method.name(),
            check
        );
    }
}

#[test]
fn model_speedup_ordering_matches_paper_at_scale() {
    // At 64 nodes the modeled ordering must be the paper's: sPCG fastest,
    // CA-PCG slowest of the s-step methods, PCG behind all of them.
    let a = poisson_2d(32);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    let s = 10;
    let machine = MachineParams::default();
    let topo = MachineTopology::paper(64);
    let t = |method: &Method| {
        let res = run(method, &problem);
        assert!(res.converged(), "{}", method.name());
        // Scale counters as if the problem were paper-sized: the model is
        // linear in counts, so relative ordering is preserved; use as-is.
        predict_time(&res.counters, &machine, &topo, 64.0).total()
    };
    let t_pcg = t(&Method::Pcg);
    let t_spcg = t(&Method::SPcg {
        s,
        basis: basis.clone(),
    });
    let t_capcg = t(&Method::CaPcg {
        s,
        basis: basis.clone(),
    });
    assert!(t_spcg < t_pcg, "sPCG {t_spcg} vs PCG {t_pcg}");
    assert!(t_spcg < t_capcg, "sPCG {t_spcg} vs CA-PCG {t_capcg}");
}

#[test]
fn allreduce_words_match_gram_sizes() {
    let a = poisson_2d(16);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    for s in [4usize, 7] {
        let res = run(
            &Method::CaPcg {
                s,
                basis: basis.clone(),
            },
            &problem,
        );
        assert!(res.converged());
        let rounds = res.counters.global_collectives;
        let dim = (2 * s + 1) as u64;
        assert_eq!(res.counters.allreduce_words, rounds * dim * dim);
    }
}
