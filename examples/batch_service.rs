//! Batched solve service: one resident operator, many right-hand sides.
//!
//! Demonstrates the three layers of `spcg::service`:
//! 1. the operator fingerprint cache — setup (preconditioner build, SELL
//!    conversion, Ritz warm-up) is paid once, then every submission for
//!    the same operator is a cache hit;
//! 2. the wide entry point — a batch of k right-hand sides runs as one
//!    blocked solve streaming the matrix once per iteration;
//! 3. the bitwise contract — every column of a batch equals the
//!    standalone solve of that right-hand side, bit for bit.
//!
//! Run: `cargo run --release --example batch_service`

use spcg::precond::{Jacobi, Preconditioner};
use spcg::prelude::*;
use spcg::service::{ServiceConfig, SolveService, SolveSpec};
use spcg::sparse::generators::{paper_rhs, poisson::poisson_3d};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // An operator the service will keep resident: 3D Poisson, 32^3 rows.
    let a = Arc::new(poisson_3d(32));
    println!("operator: n = {}, nnz = {}", a.nrows(), a.nnz());

    let spec = SolveSpec::new(
        Method::Pcg,
        Jacobi::new(&a).spec().expect("Jacobi always has a spec"),
    )
    .with_opts(SolveOptions::builder().tol(1e-8).build());

    let service = SolveService::new(ServiceConfig::default());

    // 1. Cold start: the first touch of a fingerprint builds the handle
    //    (setup) and solves; afterwards the handle answers from the LRU.
    let b = paper_rhs(&a);
    let t = Instant::now();
    let cold = service.submit(&a, &spec, &b, None);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let setup = service.handle_for(&a, &spec).setup_cost();
    let t = Instant::now();
    let _ = service.handle_for(&a, &spec); // LRU hit: one content hash
    let hit_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "cold submit {cold_ms:.1} ms ({} iters) of which setup {:.1} ms; \
         further setups are cache hits at {hit_ms:.2} ms",
        cold.iterations,
        setup.total.as_secs_f64() * 1e3,
    );

    // 2. A batch of distinct right-hand sides through the wide entry
    //    point: one matrix stream per iteration serves all columns.
    let k = 8;
    let family: Vec<Vec<f64>> = (0..k)
        .map(|j| {
            b.iter()
                .enumerate()
                .map(|(i, &v)| v * (1.0 + 0.5 * j as f64) + ((i + j) % 7) as f64 * 0.01)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = family.iter().map(Vec::as_slice).collect();
    let t = Instant::now();
    let batch = service.submit_batch(&a, &spec, &refs, None);
    let batch_s = t.elapsed().as_secs_f64();
    println!(
        "batch of {k}: {:.3} s total, {:.1} req/s",
        batch_s,
        k as f64 / batch_s
    );

    // 3. Bitwise contract: column j of the batch IS the standalone solve
    //    of right-hand side j — same x, same iteration count, same
    //    instrumentation. The service changes throughput, not numerics.
    let handle = service.handle_for(&a, &spec);
    for (j, rhs) in family.iter().enumerate() {
        let alone = handle.solve_one(rhs);
        assert_eq!(batch[j].x, alone.x, "column {j} diverged from solo solve");
        assert_eq!(batch[j].iterations, alone.iterations);
    }
    println!("bitwise check: all {k} batch columns equal their standalone solves");

    let stats = service.stats();
    println!(
        "service stats: {} requests, {} batches, {} cache hits, {} misses",
        stats.requests, stats.batches, stats.hits, stats.misses
    );
}
