//! Strong-scaling study (a miniature of the paper's Figure 1): solve a 3D
//! Poisson problem once per method, then model the time on 1-128 nodes of
//! a 128-rank-per-node cluster from the instrumented operation counts.
//!
//! Run: `cargo run --release --example scaling_model`

use spcg::perf::scaling::{poisson3d_halo_per_rank, strong_scaling};
use spcg::perf::MachineParams;
use spcg::precond::Jacobi;
use spcg::solvers::{solve, Engine, Method, Problem, SolveOptions, StoppingCriterion};
use spcg::sparse::generators::{paper_rhs, poisson::poisson_3d};

fn main() {
    let grid = 48;
    let a = poisson_3d(grid);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    let opts = SolveOptions::default()
        .with_criterion(StoppingCriterion::PrecondMNorm)
        .with_tol(1e-9);

    let machine = MachineParams::default();
    let nodes = [1usize, 4, 16, 64, 128];
    let halo = |ranks: usize| poisson3d_halo_per_rank(grid, ranks);

    let methods = [
        ("PCG".to_string(), Method::Pcg),
        (
            "sPCG(s=10)".to_string(),
            Method::SPcg {
                s: 10,
                basis: basis.clone(),
            },
        ),
        (
            "CA-PCG(s=10)".to_string(),
            Method::CaPcg {
                s: 10,
                basis: basis.clone(),
            },
        ),
        ("CA-PCG3(s=10)".to_string(), Method::CaPcg3 { s: 10, basis }),
    ];
    let pcg_result = solve(&methods[0].1, &problem, &opts, Engine::Serial);
    let base = strong_scaling(&pcg_result.counters, &machine, &[1], 128, halo)[0]
        .time
        .total();
    println!("3D Poisson {grid}^3, modeled speedup over PCG on 1 node ({base:.3}s):\n");
    print!("{:14}", "method");
    for n in nodes {
        print!("{n:>8}n");
    }
    println!();
    for (name, method) in &methods {
        let res = solve(method, &problem, &opts, Engine::Serial);
        assert!(res.converged(), "{name}: {:?}", res.outcome);
        print!("{name:14}");
        for p in strong_scaling(&res.counters, &machine, &nodes, 128, halo) {
            print!("{:>9.2}", base / p.time.total());
        }
        println!();
    }
    println!("\n(the s-step methods keep scaling where PCG's 2 reductions/iteration saturate)");
}
