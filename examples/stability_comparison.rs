//! Numerical-stability comparison (a miniature of the paper's Table 2):
//! on an ill-conditioned SPD system, the monomial basis at s = 10 destroys
//! every s-step method while the Chebyshev basis restores PCG-like
//! convergence.
//!
//! Run: `cargo run --release --example stability_comparison`

use spcg::basis::BasisType;
use spcg::precond::Jacobi;
use spcg::solvers::{solve, Engine, Method, Problem, SolveOptions, SolveResult};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};

fn cell(r: &SolveResult) -> String {
    if r.converged() {
        format!("{:>6}", r.iterations)
    } else {
        format!("{:>6}", "-")
    }
}

fn main() {
    // Log-uniform spectrum with condition number 3e4: hard enough that the
    // basis choice decides survival.
    let a = spd_with_spectrum(
        4000,
        &SpectrumShape::LogUniform {
            kappa: 3e4,
            jitter: 0.1,
        },
        1.0,
        4,
        7,
    );
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default().with_tol(1e-8);

    let r_pcg = solve(&Method::Pcg, &problem, &opts, Engine::Serial);
    println!("PCG reference: {} iterations\n", r_pcg.iterations);

    let cheb = spcg::solvers::chebyshev_basis(&problem, 40, 0.1);
    let newton = spcg::solvers::newton_basis(&problem, 40, 10);
    println!(
        "{:10} {:>8} {:>8} {:>8}",
        "method", "monomial", "newton", "chebyshev"
    );
    for (name, make) in [
        (
            "sPCG",
            &(|basis: BasisType| Method::SPcg { s: 10, basis }) as &dyn Fn(BasisType) -> Method,
        ),
        ("CA-PCG", &|basis| Method::CaPcg { s: 10, basis }),
        ("CA-PCG3", &|basis| Method::CaPcg3 { s: 10, basis }),
    ] {
        let rm = solve(&make(BasisType::Monomial), &problem, &opts, Engine::Serial);
        let rn = solve(&make(newton.clone()), &problem, &opts, Engine::Serial);
        let rc = solve(&make(cheb.clone()), &problem, &opts, Engine::Serial);
        println!(
            "{name:10} {:>8} {:>8} {:>8}",
            cell(&rm),
            cell(&rn),
            cell(&rc)
        );
    }
    println!("\n('-' = diverged, stagnated, or hit the iteration cap)");
}
