//! Quickstart: solve a 2D Poisson system with sPCG and compare the
//! communication footprint against standard PCG.
//!
//! Run: `cargo run --release --example quickstart`

use spcg::basis::BasisType;
use spcg::precond::Jacobi;
use spcg::solvers::{pcg, spcg as spcg_solve, Problem, SolveOptions};
use spcg::sparse::generators::{paper_rhs, poisson::poisson_2d};

fn main() {
    // 1. A sparse SPD system: 5-point Poisson on a 200x200 grid.
    let a = poisson_2d(200);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    println!("system: n = {}, nnz = {}", a.nrows(), a.nnz());

    // 2. Baseline: standard PCG.
    let opts = SolveOptions::default().with_tol(1e-9);
    let r_pcg = pcg(&problem, &opts);
    println!(
        "PCG : {:?} in {} iterations, {} global reductions",
        r_pcg.outcome, r_pcg.iterations, r_pcg.counters.global_collectives
    );

    // 3. sPCG with a Chebyshev basis estimated from a short warm-up run
    //    (the paper's setup), s = 10: same convergence, ~20x fewer
    //    synchronizations.
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    if let BasisType::Chebyshev { lambda_min, lambda_max } = &basis {
        println!("estimated spectrum of M⁻¹A: [{lambda_min:.4}, {lambda_max:.4}]");
    }
    let r_spcg = spcg_solve(&problem, 10, &basis, &opts);
    println!(
        "sPCG: {:?} in {} iterations, {} global reductions",
        r_spcg.outcome, r_spcg.iterations, r_spcg.counters.global_collectives
    );
    println!(
        "true relative residuals: PCG {:.2e}, sPCG {:.2e}",
        r_pcg.true_relative_residual(&a, &b),
        r_spcg.true_relative_residual(&a, &b)
    );
    assert!(r_pcg.converged() && r_spcg.converged());
}
