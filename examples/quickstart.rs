//! Quickstart: solve a 2D Poisson system with sPCG and compare the
//! communication footprint against standard PCG — then run the same solve
//! on the rank-parallel engine.
//!
//! Run: `cargo run --release --example quickstart`

use spcg::basis::BasisType;
use spcg::precond::Jacobi;
use spcg::prelude::*;
use spcg::sparse::generators::{paper_rhs, poisson::poisson_2d};

fn main() {
    // 1. A sparse SPD system: 5-point Poisson on a 200x200 grid.
    let a = poisson_2d(200);
    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::try_new(&a, &m, &b).expect("dimensions match");
    println!("system: n = {}, nnz = {}", a.nrows(), a.nnz());

    // 2. Baseline: standard PCG.
    let opts = SolveOptions::builder().tol(1e-9).build();
    let r_pcg = solve(&Method::Pcg, &problem, &opts, Engine::Serial);
    println!(
        "PCG : {:?} in {} iterations, {} global reductions",
        r_pcg.outcome, r_pcg.iterations, r_pcg.counters.global_collectives
    );

    // 3. sPCG with a Chebyshev basis estimated from a short warm-up run
    //    (the paper's setup), s = 10: same convergence, ~20x fewer
    //    synchronizations.
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    if let BasisType::Chebyshev {
        lambda_min,
        lambda_max,
    } = &basis
    {
        println!("estimated spectrum of M⁻¹A: [{lambda_min:.4}, {lambda_max:.4}]");
    }
    let method = Method::SPcg { s: 10, basis };
    let r_spcg = solve(&method, &problem, &opts, Engine::Serial);
    println!(
        "sPCG: {:?} in {} iterations, {} global reductions",
        r_spcg.outcome, r_spcg.iterations, r_spcg.counters.global_collectives
    );
    println!(
        "true relative residuals: PCG {:.2e}, sPCG {:.2e}",
        r_pcg.true_relative_residual(&a, &b),
        r_spcg.true_relative_residual(&a, &b)
    );
    assert!(r_pcg.converged() && r_spcg.converged());

    // 4. The same solve on 4 real communicating ranks: block-row partition,
    //    one depth-s ghost-zone exchange per s-block, real collectives.
    let r_ranked = solve(&method, &problem, &opts, Engine::Ranked { ranks: 4 });
    println!(
        "sPCG on 4 ranks: {:?} in {} iterations, {} collectives/rank, {} halo exchanges",
        r_ranked.outcome,
        r_ranked.iterations,
        r_ranked.collectives_per_rank.unwrap_or(0),
        r_ranked.counters.halo_exchanges
    );
    assert!(r_ranked.converged());
}
