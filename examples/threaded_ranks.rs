//! Real parallel execution: rank-parallel PCG and sPCG on OS threads with
//! actual allreduce collectives and halo exchanges — the shared-memory
//! stand-in for the paper's MPI runs, demonstrating the factor-2s
//! reduction in synchronization frequency.
//!
//! Run: `cargo run --release --example threaded_ranks`

use spcg::precond::Jacobi;
use spcg::solvers::{par_pcg, par_spcg, Problem};
use spcg::sparse::generators::{paper_rhs, poisson::poisson_2d};

fn main() {
    let a = poisson_2d(160);
    let b = paper_rhs(&a);
    let nranks = 8;
    let s = 10;

    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);

    println!("n = {}, {nranks} ranks (threads), block-row partition\n", a.nrows());
    let r_pcg = par_pcg(&a, &b, nranks, 1e-9, 20_000);
    println!(
        "par PCG : {:?} in {} iterations, {} collectives/rank ({:.2}/iteration)",
        r_pcg.outcome,
        r_pcg.iterations,
        r_pcg.collectives_per_rank,
        r_pcg.collectives_per_rank as f64 / r_pcg.iterations as f64
    );
    let r_spcg = par_spcg(&a, &b, s, &basis, nranks, 1e-9, 20_000);
    println!(
        "par sPCG: {:?} in {} iterations, {} collectives/rank ({:.2}/iteration)",
        r_spcg.outcome,
        r_spcg.iterations,
        r_spcg.collectives_per_rank,
        r_spcg.collectives_per_rank as f64 / r_spcg.iterations as f64
    );
    let ratio = (r_pcg.collectives_per_rank as f64 / r_pcg.iterations as f64)
        / (r_spcg.collectives_per_rank as f64 / r_spcg.iterations as f64);
    println!("\nsynchronization frequency reduced {ratio:.1}x (theory: 2s = {})", 2 * s);
}
