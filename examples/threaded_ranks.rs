//! Real parallel execution: PCG and sPCG on the rank-parallel engine — OS
//! threads with actual allreduce collectives and ghost-zone halo exchanges,
//! the shared-memory stand-in for the paper's MPI runs — demonstrating the
//! factor-2s reduction in synchronization frequency and the one-exchange-
//! per-s-block halo amortization.
//!
//! Run: `cargo run --release --example threaded_ranks`

use spcg::precond::Jacobi;
use spcg::prelude::*;
use spcg::sparse::generators::{paper_rhs, poisson::poisson_2d};

fn report(label: &str, r: &SolveResult) {
    let collectives = r.collectives_per_rank.unwrap_or(0);
    println!(
        "{label}: {:?} in {} iterations, {} collectives/rank ({:.2}/iteration), \
         {} halo exchanges ({:.2}/iteration)",
        r.outcome,
        r.iterations,
        collectives,
        collectives as f64 / r.iterations as f64,
        r.counters.halo_exchanges,
        r.counters.halo_exchanges as f64 / r.iterations as f64,
    );
}

fn main() {
    let a = poisson_2d(160);
    let b = paper_rhs(&a);
    let ranks = 8;
    let s = 10;

    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    let opts = SolveOptions::builder().tol(1e-9).max_iters(20_000).build();
    let engine = Engine::Ranked { ranks };

    println!(
        "n = {}, {ranks} ranks (threads), block-row partition\n",
        a.nrows()
    );
    let r_pcg = solve(&Method::Pcg, &problem, &opts, engine);
    report("PCG ", &r_pcg);
    let r_spcg = solve(&Method::SPcg { s, basis }, &problem, &opts, engine);
    report("sPCG", &r_spcg);

    let rate = |r: &SolveResult| r.collectives_per_rank.unwrap_or(0) as f64 / r.iterations as f64;
    println!(
        "\nsynchronization frequency reduced {:.1}x (theory: 2s = {})",
        rate(&r_pcg) / rate(&r_spcg),
        2 * s
    );
}
