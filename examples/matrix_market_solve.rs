//! Solve a system from a Matrix Market file — drop in any SuiteSparse SPD
//! matrix to rerun the paper's experiments on the real data.
//!
//! Run: `cargo run --release --example matrix_market_solve [file.mtx]`
//! Without an argument, a sample file is generated and solved.

use spcg::precond::Jacobi;
use spcg::solvers::{pcg, spcg as spcg_solve, Problem, SolveOptions};
use spcg::sparse::generators::paper_rhs;
use spcg::sparse::io::{read_matrix_market, write_matrix_market};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        let sample = std::env::temp_dir().join("spcg_sample.mtx");
        let a = spcg::sparse::generators::poisson::poisson_2d(64);
        write_matrix_market(&a, &sample).expect("cannot write sample");
        println!("no file given; generated sample {}", sample.display());
        sample.to_string_lossy().into_owned()
    });
    let a = read_matrix_market(&path).expect("cannot read matrix market file");
    println!("loaded {}: n = {}, nnz = {}", path, a.nrows(), a.nnz());
    assert!(a.is_symmetric(1e-10), "matrix must be symmetric");

    let b = paper_rhs(&a);
    let m = Jacobi::new(&a);
    let problem = Problem::new(&a, &m, &b);
    let opts = SolveOptions::default().with_tol(1e-9);

    let r1 = pcg(&problem, &opts);
    println!("PCG : {:?} in {} iterations", r1.outcome, r1.iterations);
    let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
    let r2 = spcg_solve(&problem, 10, &basis, &opts);
    println!("sPCG: {:?} in {} iterations", r2.outcome, r2.iterations);
}
