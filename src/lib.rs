//! # spcg — s-step preconditioned conjugate gradient methods
//!
//! A from-scratch Rust implementation of the solver family studied in
//! *"Numerical Properties and Scalability of s-Step Preconditioned
//! Conjugate Gradient Methods"* (Mayer & Gansterer, SC25 ScalAH): standard
//! PCG, the monomial-basis s-step PCG of Chronopoulos/Gear, the paper's
//! generalized **sPCG** with arbitrary polynomial bases, Toledo's CA-PCG
//! and Hoemmen's CA-PCG3 — together with every substrate they need (sparse
//! kernels, preconditioners, basis machinery, a distributed-execution
//! stand-in, and a performance model).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`sparse`] — CSR matrices, multivectors, generators, Matrix Market I/O;
//! * [`dist`] — operation counters and the threaded rank executor;
//! * [`precond`] — Jacobi, Chebyshev, block-Jacobi, SSOR;
//! * [`basis`] — polynomial bases, matrix powers kernel, Ritz/Leja shifts;
//! * [`solvers`] — the six solvers plus rank-parallel variants;
//! * [`service`] — resident solve service: fingerprint setup cache and
//!   batched multi-RHS admission;
//! * [`perf`] — Table-1 formulas and the α-β cluster model;
//! * [`obs`] — span tracer: per-rank phase timelines and Chrome trace export.
//!
//! ## Quickstart
//!
//! ```
//! use spcg::precond::Jacobi;
//! use spcg::solvers::{solve, Engine, Method, Problem, SolveOptions};
//! use spcg::sparse::generators::{paper_rhs, poisson::poisson_2d};
//!
//! let a = poisson_2d(32);
//! let b = paper_rhs(&a);
//! let m = Jacobi::new(&a);
//! let problem = Problem::try_new(&a, &m, &b).unwrap();
//! let opts = SolveOptions::builder().tol(1e-8).build();
//! # // Exact-count assertions below assume a fault-free run; stay
//! # // deterministic even under the CI fault job's SPCG_FAULTS.
//! # let opts = opts.with_faults(None);
//!
//! // Standard PCG: two global reductions per iteration.
//! let reference = solve(&Method::Pcg, &problem, &opts, Engine::Serial);
//! assert!(reference.converged());
//!
//! // sPCG with a Chebyshev basis — one reduction per s steps — executed on
//! // 4 real communicating ranks (threads): block-row partitions, one
//! // depth-s ghost-zone exchange per s-block, real allreduce collectives.
//! let basis = spcg::solvers::chebyshev_basis(&problem, 20, 0.05);
//! let method = Method::SPcg { s: 5, basis };
//! let fast = solve(&method, &problem, &opts, Engine::Ranked { ranks: 4 });
//! assert!(fast.converged());
//! assert!(fast.counters.global_collectives < reference.counters.global_collectives / 5);
//! assert!(fast.collectives_per_rank.is_some());
//! ```

pub use spcg_basis as basis;
pub use spcg_dist as dist;
pub use spcg_obs as obs;
pub use spcg_perf as perf;
pub use spcg_precond as precond;
pub use spcg_service as service;
pub use spcg_solvers as solvers;
pub use spcg_sparse as sparse;

/// The one-import surface for typical solves.
///
/// ```
/// use spcg::prelude::*;
///
/// let a = spcg::sparse::generators::poisson::poisson_2d(16);
/// let b = spcg::sparse::generators::paper_rhs(&a);
/// let m = spcg::precond::Jacobi::new(&a);
/// let problem = Problem::try_new(&a, &m, &b).unwrap();
/// let opts = SolveOptions::builder().tol(1e-8).build().with_faults(None);
/// let res = solve(&Method::Pcg, &problem, &opts, Engine::Ranked { ranks: 2 });
/// assert!(res.converged());
/// ```
///
/// Brings in the problem/option/result types, the [`Method`](solvers::Method)
/// and [`Engine`](solvers::Engine) selectors, the transport abstractions
/// ([`Comm`](dist::Comm), [`Exchange`](dist::Exchange),
/// [`Backend`](dist::Backend)) and the [`solve`](solvers::solve) entry
/// point. Crate-rooted
/// paths (`spcg::sparse::…`, `spcg::precond::…`) stay the idiom for
/// matrices and preconditioners — those namespaces are large and solves
/// touch only a couple of names from each.
pub mod prelude {
    pub use crate::dist::{Backend, Comm, Counters, Exchange};
    pub use crate::solvers::{
        solve, Engine, Method, Outcome, Problem, SolveOptions, SolveResult, StoppingCriterion,
    };
}
