//! `spcg-rankd` — one rank of a [`Backend::Proc`](spcg::dist::Backend)
//! world.
//!
//! Spawned by the parent solve (`spcg_solvers::procexec::run_proc`), never
//! by hand: `spcg-rankd <socket> <rank>` connects to the parent's hub
//! socket, receives its Setup frame, runs the rank, and ships the result
//! back. Killing this process mid-solve is the supported way to exercise
//! real rank-failure recovery.

#[cfg(unix)]
fn main() -> ! {
    spcg::solvers::procexec::worker_main()
}

#[cfg(not(unix))]
fn main() {
    eprintln!("spcg-rankd: the proc backend requires a Unix platform");
    std::process::exit(2);
}
